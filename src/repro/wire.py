"""Wire-format decoders for every network-transmitted protocol object.

The canonical encodings are defined by each object's ``encode`` method;
this module is the inverse: strict, bounds-checked decoders so nodes can
exchange transactions, certificates, blocks and sidechain configurations
as byte strings.  Every decoder raises
:class:`~repro.errors.DecodeError` on malformed input, and the
``decode_*`` entry points additionally reject trailing bytes.
"""

from __future__ import annotations

from repro.core.bootstrap import ProofdataSchema, SidechainConfig
from repro.core.transfers import (
    BackwardTransfer,
    BackwardTransferRequest,
    CeasedSidechainWithdrawal,
    ForwardTransfer,
    WithdrawalCertificate,
)
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Decoder
from repro.errors import DecodeError
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    LatusTransaction,
    PaymentTx,
    SignedInput,
)
from repro.latus.utxo import Utxo
from repro.mainchain.block import Block, BlockHeader
from repro.mainchain.transaction import (
    BtrTx,
    CertificateTx,
    CoinTransaction,
    CswTx,
    SidechainDeclarationTx,
    Transaction,
    TxInput,
)
from repro.mainchain.utxo import Outpoint, TxOutput
from repro.snark.proving import Proof, VerifyingKey

# ---------------------------------------------------------------------------
# CCTP datatypes (repro.core.transfers)
# ---------------------------------------------------------------------------


def read_forward_transfer(dec: Decoder) -> ForwardTransfer:
    return ForwardTransfer(
        ledger_id=dec.raw(32),
        receiver_metadata=dec.var_bytes(),
        amount=dec.u64(),
    )


def read_backward_transfer(dec: Decoder) -> BackwardTransfer:
    return BackwardTransfer(receiver_addr=dec.var_bytes(), amount=dec.u64())


def read_withdrawal_certificate(dec: Decoder) -> WithdrawalCertificate:
    ledger_id = dec.raw(32)
    epoch_id = dec.u64()
    quality = dec.u64()
    bt_list = dec.sequence(lambda d: _nested(d, read_backward_transfer))
    proofdata = dec.sequence(lambda d: d.field_element())
    proof = Proof.from_bytes(dec.var_bytes())
    return WithdrawalCertificate(
        ledger_id=ledger_id,
        epoch_id=epoch_id,
        quality=quality,
        bt_list=tuple(bt_list),
        proofdata=tuple(proofdata),
        proof=proof,
    )


def _read_withdrawal_request_fields(dec: Decoder) -> dict:
    return dict(
        ledger_id=dec.raw(32),
        receiver=dec.var_bytes(),
        amount=dec.u64(),
        nullifier=dec.var_bytes(),
        proofdata=tuple(dec.sequence(lambda d: d.field_element())),
        proof=Proof.from_bytes(dec.var_bytes()),
    )


def read_backward_transfer_request(dec: Decoder) -> BackwardTransferRequest:
    return BackwardTransferRequest(**_read_withdrawal_request_fields(dec))


def read_ceased_sidechain_withdrawal(dec: Decoder) -> CeasedSidechainWithdrawal:
    return CeasedSidechainWithdrawal(**_read_withdrawal_request_fields(dec))


def read_sidechain_config(dec: Decoder) -> SidechainConfig:
    ledger_id = dec.raw(32)
    start_block = dec.u64()
    epoch_len = dec.u64()
    submit_len = dec.u64()
    wcert_vk = VerifyingKey.from_bytes(dec.var_bytes())
    btr_vk = dec.optional(lambda d: VerifyingKey.from_bytes(d.var_bytes()))
    csw_vk = dec.optional(lambda d: VerifyingKey.from_bytes(d.var_bytes()))
    schemas = [
        ProofdataSchema(fields=tuple(dec.sequence(lambda d: d.text())))
        for _ in range(3)
    ]
    return SidechainConfig(
        ledger_id=ledger_id,
        start_block=start_block,
        epoch_len=epoch_len,
        submit_len=submit_len,
        wcert_vk=wcert_vk,
        btr_vk=btr_vk,
        csw_vk=csw_vk,
        wcert_proofdata=schemas[0],
        btr_proofdata=schemas[1],
        csw_proofdata=schemas[2],
    )


# ---------------------------------------------------------------------------
# Mainchain transactions and blocks
# ---------------------------------------------------------------------------


def read_outpoint(dec: Decoder) -> Outpoint:
    return Outpoint(txid=dec.raw(32), index=dec.u32())


def read_tx_output(dec: Decoder) -> TxOutput:
    return TxOutput(addr=dec.var_bytes(), amount=dec.u64())


def read_tx_input(dec: Decoder) -> TxInput:
    return TxInput(
        outpoint=read_outpoint(dec),
        pubkey=PublicKey.from_bytes(dec.var_bytes()),
        signature=Signature.from_bytes(dec.var_bytes()),
    )


def _nested(dec: Decoder, read_item):
    inner = Decoder(dec.var_bytes())
    item = read_item(inner)
    inner.done()
    return item


def read_mc_transaction(dec: Decoder) -> Transaction:
    kind = dec.u8()
    if kind == CoinTransaction.kind:
        is_coinbase = dec.boolean()
        coinbase_tag = dec.var_bytes()
        inputs = dec.sequence(lambda d: _nested(d, read_tx_input))
        outputs = dec.sequence(lambda d: _nested(d, read_tx_output))
        fts = dec.sequence(lambda d: _nested(d, read_forward_transfer))
        return CoinTransaction(
            inputs=tuple(inputs),
            outputs=tuple(outputs),
            forward_transfers=tuple(fts),
            is_coinbase=is_coinbase,
            coinbase_tag=coinbase_tag,
        )
    if kind == SidechainDeclarationTx.kind:
        return SidechainDeclarationTx(config=_nested(dec, read_sidechain_config))
    if kind == CertificateTx.kind:
        return CertificateTx(wcert=_nested(dec, read_withdrawal_certificate))
    if kind == BtrTx.kind:
        requests = dec.sequence(
            lambda d: _nested(d, read_backward_transfer_request)
        )
        return BtrTx(requests=tuple(requests))
    if kind == CswTx.kind:
        return CswTx(csw=_nested(dec, read_ceased_sidechain_withdrawal))
    raise DecodeError(f"unknown mainchain transaction kind {kind}")


def read_block_header(dec: Decoder) -> BlockHeader:
    return BlockHeader(
        prev_hash=dec.raw(32),
        height=dec.u64(),
        merkle_root=dec.raw(32),
        sc_txs_commitment=dec.raw(32),
        timestamp=dec.u64(),
        target_bits=dec.u32(),
        nonce=dec.u64(),
    )


def read_block(dec: Decoder) -> Block:
    header = _nested(dec, read_block_header)
    transactions = dec.sequence(lambda d: _nested(d, read_mc_transaction))
    return Block(header=header, transactions=tuple(transactions))


# ---------------------------------------------------------------------------
# Latus transactions
# ---------------------------------------------------------------------------


def read_utxo(dec: Decoder) -> Utxo:
    return Utxo(addr=dec.field_element(), amount=dec.u64(), nonce=dec.field_element())


def read_signed_input(dec: Decoder) -> SignedInput:
    return SignedInput(
        utxo=_nested(dec, read_utxo),
        pubkey=PublicKey.from_bytes(dec.var_bytes()),
        signature=Signature.from_bytes(dec.var_bytes()),
    )


def read_latus_transaction(dec: Decoder) -> LatusTransaction:
    kind = dec.u8()
    if kind == PaymentTx.kind:
        inputs = dec.sequence(lambda d: _nested(d, read_signed_input))
        outputs = dec.sequence(lambda d: _nested(d, read_utxo))
        return PaymentTx(inputs=tuple(inputs), outputs=tuple(outputs))
    if kind == BackwardTransferTx.kind:
        inputs = dec.sequence(lambda d: _nested(d, read_signed_input))
        bts = dec.sequence(lambda d: _nested(d, read_backward_transfer))
        return BackwardTransferTx(
            inputs=tuple(inputs), backward_transfers=tuple(bts)
        )
    if kind == ForwardTransfersTx.kind:
        mc_block_id = dec.raw(32)
        transfers = dec.sequence(lambda d: _nested(d, read_forward_transfer))
        outputs = dec.sequence(lambda d: _nested(d, read_utxo))
        rejected = dec.sequence(lambda d: _nested(d, read_backward_transfer))
        return ForwardTransfersTx(
            mc_block_id=mc_block_id,
            transfers=tuple(transfers),
            outputs=tuple(outputs),
            rejected=tuple(rejected),
        )
    if kind == BackwardTransferRequestsTx.kind:
        mc_block_id = dec.raw(32)
        requests = dec.sequence(
            lambda d: _nested(d, read_backward_transfer_request)
        )
        inputs = dec.sequence(lambda d: _nested(d, read_utxo))
        bts = dec.sequence(lambda d: _nested(d, read_backward_transfer))
        return BackwardTransferRequestsTx(
            mc_block_id=mc_block_id,
            requests=tuple(requests),
            inputs=tuple(inputs),
            backward_transfers=tuple(bts),
        )
    raise DecodeError(f"unknown latus transaction kind {kind}")


# ---------------------------------------------------------------------------
# Byte-string entry points (strict: reject trailing bytes)
# ---------------------------------------------------------------------------


def _strict(read_item, data: bytes):
    dec = Decoder(data)
    item = read_item(dec)
    dec.done()
    return item


def decode_forward_transfer(data: bytes) -> ForwardTransfer:
    """Decode a :class:`ForwardTransfer` from its canonical bytes."""
    return _strict(read_forward_transfer, data)


def decode_backward_transfer(data: bytes) -> BackwardTransfer:
    """Decode a :class:`BackwardTransfer`."""
    return _strict(read_backward_transfer, data)


def decode_withdrawal_certificate(data: bytes) -> WithdrawalCertificate:
    """Decode a :class:`WithdrawalCertificate`."""
    return _strict(read_withdrawal_certificate, data)


def decode_backward_transfer_request(data: bytes) -> BackwardTransferRequest:
    """Decode a :class:`BackwardTransferRequest`."""
    return _strict(read_backward_transfer_request, data)


def decode_ceased_sidechain_withdrawal(data: bytes) -> CeasedSidechainWithdrawal:
    """Decode a :class:`CeasedSidechainWithdrawal`."""
    return _strict(read_ceased_sidechain_withdrawal, data)


def decode_sidechain_config(data: bytes) -> SidechainConfig:
    """Decode a :class:`SidechainConfig`."""
    return _strict(read_sidechain_config, data)


def decode_mc_transaction(data: bytes) -> Transaction:
    """Decode any mainchain transaction (dispatch on the kind byte)."""
    return _strict(read_mc_transaction, data)


def decode_block_header(data: bytes) -> BlockHeader:
    """Decode a mainchain :class:`BlockHeader`."""
    return _strict(read_block_header, data)


def decode_block(data: bytes) -> Block:
    """Decode a full mainchain :class:`Block`."""
    return _strict(read_block, data)


def decode_latus_transaction(data: bytes) -> LatusTransaction:
    """Decode any Latus transaction (dispatch on the kind byte)."""
    return _strict(read_latus_transaction, data)


def decode_utxo(data: bytes) -> Utxo:
    """Decode a Latus :class:`Utxo`."""
    return _strict(read_utxo, data)


# ---------------------------------------------------------------------------
# Proof objects and sidechain blocks (the peer-to-peer payloads)
# ---------------------------------------------------------------------------

from repro.core.commitment import AbsenceProof, PresenceProof, _NeighborLeaf
from repro.crypto.fixed_merkle import FieldMerkleProof
from repro.crypto.merkle import MerkleProof
from repro.encoding import Encoder
from repro.latus.block import SidechainBlock
from repro.latus.mc_ref import MCBlockReference


def write_merkle_proof(enc: Encoder, proof: MerkleProof) -> None:
    """Serialize a byte-tree Merkle proof."""
    enc.raw(proof.leaf).u32(proof.index)
    enc.sequence(proof.siblings, lambda e, s: e.raw(s))
    enc.sequence(proof.path_bits, lambda e, b: e.boolean(b))


def read_merkle_proof(dec: Decoder) -> MerkleProof:
    """Deserialize a byte-tree Merkle proof."""
    leaf = dec.raw(32)
    index = dec.u32()
    siblings = dec.sequence(lambda d: d.raw(32))
    path_bits = dec.sequence(lambda d: d.boolean())
    if len(siblings) != len(path_bits):
        raise DecodeError("merkle proof siblings/path length mismatch")
    return MerkleProof(
        leaf=leaf, index=index, siblings=tuple(siblings), path_bits=tuple(path_bits)
    )


def write_field_merkle_proof(enc: Encoder, proof: FieldMerkleProof) -> None:
    """Serialize a field-tree Merkle proof."""
    enc.field_element(proof.leaf).u64(proof.position)
    enc.sequence(proof.siblings, lambda e, s: e.field_element(s))


def read_field_merkle_proof(dec: Decoder) -> FieldMerkleProof:
    """Deserialize a field-tree Merkle proof."""
    leaf = dec.field_element()
    position = dec.u64()
    siblings = dec.sequence(lambda d: d.field_element())
    return FieldMerkleProof(leaf=leaf, position=position, siblings=tuple(siblings))


def _write_neighbor(enc: Encoder, leaf: _NeighborLeaf) -> None:
    enc.raw(leaf.ledger_id).raw(leaf.txs_hash).raw(leaf.wcert_hash)
    write_merkle_proof(enc, leaf.merkle_proof)


def _read_neighbor(dec: Decoder) -> _NeighborLeaf:
    return _NeighborLeaf(
        ledger_id=dec.raw(32),
        txs_hash=dec.raw(32),
        wcert_hash=dec.raw(32),
        merkle_proof=read_merkle_proof(dec),
    )


def write_presence_proof(enc: Encoder, proof: PresenceProof) -> None:
    """Serialize an ``mproof``."""
    enc.raw(proof.ledger_id).raw(proof.txs_hash).raw(proof.wcert_hash)
    write_merkle_proof(enc, proof.merkle_proof)
    enc.u32(proof.leaf_count)


def read_presence_proof(dec: Decoder) -> PresenceProof:
    """Deserialize an ``mproof``."""
    return PresenceProof(
        ledger_id=dec.raw(32),
        txs_hash=dec.raw(32),
        wcert_hash=dec.raw(32),
        merkle_proof=read_merkle_proof(dec),
        leaf_count=dec.u32(),
    )


def write_absence_proof(enc: Encoder, proof: AbsenceProof) -> None:
    """Serialize a ``proofOfNoData``."""
    enc.raw(proof.ledger_id)
    enc.optional(proof.left, _write_neighbor)
    enc.optional(proof.right, _write_neighbor)
    enc.u32(proof.leaf_count)


def read_absence_proof(dec: Decoder) -> AbsenceProof:
    """Deserialize a ``proofOfNoData``."""
    return AbsenceProof(
        ledger_id=dec.raw(32),
        left=dec.optional(_read_neighbor),
        right=dec.optional(_read_neighbor),
        leaf_count=dec.u32(),
    )


def encode_mc_ref(ref: MCBlockReference) -> bytes:
    """Canonical wire encoding of an MC block reference (§5.5.1)."""
    enc = Encoder().var_bytes(ref.header.encode())
    enc.optional(ref.mproof, write_presence_proof)
    enc.optional(ref.proof_of_no_data, write_absence_proof)
    enc.optional(ref.forward_transfers, lambda e, tx: e.var_bytes(tx.encode()))
    enc.optional(ref.bt_requests, lambda e, tx: e.var_bytes(tx.encode()))
    enc.optional(ref.wcert, lambda e, c: e.var_bytes(c.encode()))
    return enc.done()


def read_mc_ref(dec: Decoder) -> MCBlockReference:
    """Deserialize an MC block reference."""
    header = _nested(dec, read_block_header)
    mproof = dec.optional(read_presence_proof)
    no_data = dec.optional(read_absence_proof)
    ftt = dec.optional(lambda d: _nested(d, read_latus_transaction))
    btrtx = dec.optional(lambda d: _nested(d, read_latus_transaction))
    wcert = dec.optional(lambda d: _nested(d, read_withdrawal_certificate))
    if ftt is not None and not isinstance(ftt, ForwardTransfersTx):
        raise DecodeError("reference FTTx slot holds a different transaction kind")
    if btrtx is not None and not isinstance(btrtx, BackwardTransferRequestsTx):
        raise DecodeError("reference BTRTx slot holds a different transaction kind")
    return MCBlockReference(
        header=header,
        mproof=mproof,
        proof_of_no_data=no_data,
        forward_transfers=ftt,
        bt_requests=btrtx,
        wcert=wcert,
    )


def decode_mc_ref(data: bytes) -> MCBlockReference:
    """Decode an MC block reference from bytes."""
    return _strict(read_mc_ref, data)


def encode_sidechain_block(block: SidechainBlock) -> bytes:
    """Full wire encoding of a Latus block (the P2P broadcast payload).

    Note this is richer than ``SidechainBlock.encode_unsigned`` (which
    defines the block id over reference hashes and txids only): the wire
    form carries complete references and transactions so a peer can run
    full validation.
    """
    enc = (
        Encoder()
        .raw(block.parent_hash)
        .u64(block.height)
        .u64(block.slot)
        .var_bytes(block.forger_pubkey.to_bytes())
        .field_element(block.state_digest)
    )
    enc.sequence(block.mc_refs, lambda e, r: e.var_bytes(encode_mc_ref(r)))
    enc.sequence(block.transactions, lambda e, t: e.var_bytes(t.encode()))
    enc.var_bytes(block.signature.to_bytes())
    return enc.done()


def read_sidechain_block(dec: Decoder) -> SidechainBlock:
    """Deserialize a Latus block."""
    parent_hash = dec.raw(32)
    height = dec.u64()
    slot = dec.u64()
    forger_pubkey = PublicKey.from_bytes(dec.var_bytes())
    state_digest = dec.field_element()
    mc_refs = dec.sequence(lambda d: _nested(d, read_mc_ref))
    transactions = dec.sequence(lambda d: _nested(d, read_latus_transaction))
    signature = Signature.from_bytes(dec.var_bytes())
    return SidechainBlock(
        parent_hash=parent_hash,
        height=height,
        slot=slot,
        forger_pubkey=forger_pubkey,
        mc_refs=tuple(mc_refs),
        transactions=tuple(transactions),
        state_digest=state_digest,
        signature=signature,
    )


def decode_sidechain_block(data: bytes) -> SidechainBlock:
    """Decode a Latus block from bytes."""
    return _strict(read_sidechain_block, data)
