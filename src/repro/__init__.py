"""Zendoo - a zk-SNARK verifiable cross-chain transfer protocol.

A full Python reproduction of Garoffolo, Kaidalov & Oliynykov (2020):
the Zendoo cross-chain transfer protocol (:mod:`repro.core`), a Bitcoin-like
mainchain substrate (:mod:`repro.mainchain`), the Latus decentralized
sidechain (:mod:`repro.latus`), the SNARK substrate with recursive
composition (:mod:`repro.snark`), and an end-to-end scenario harness
(:mod:`repro.scenarios`).

Quickstart::

    from repro.scenarios import ZendooHarness
    from repro.crypto import KeyPair

    harness = ZendooHarness()
    harness.mine(2)
    sc = harness.create_sidechain("demo", epoch_len=5, submit_len=2)
    alice = KeyPair.from_seed("alice")
    harness.forward_transfer(sc, alice, 1_000_000)
    harness.run_epochs(sc, 1)
    print(harness.wallet(sc, alice).balance())
"""

__version__ = "1.0.0"

from repro import (
    core,
    crypto,
    federated,
    latus,
    mainchain,
    network,
    observability,
    scenarios,
    snark,
    wire,
)
from repro.errors import ZendooError

__all__ = [
    "ZendooError",
    "__version__",
    "core",
    "crypto",
    "federated",
    "latus",
    "mainchain",
    "network",
    "observability",
    "scenarios",
    "snark",
    "wire",
]
