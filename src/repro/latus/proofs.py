"""State-transition proofs for Latus (paper §5.4, Fig. 10/11).

:class:`LatusTransitionSystem` plugs the sidechain's ``update`` function
into the generic recursive composer (Def. 2.5): every transaction is a base
transition, and base proofs are merged into a single proof per block and
then per withdrawal epoch.

The base circuits carry *real* R1CS for the arithmetizable core of each
transaction type — 64-bit range checks on every amount, value-conservation
sums, and the MiMC recomputation of each input/output UTXO leaf — so the
constraint counts behind the proving-cost benches (Q5) are genuine.  The
non-arithmetized parts (signature validity, MST slot bookkeeping) are
native checks, per the substitution notice in DESIGN.md §4.

Two proving strategies are provided:

* ``per_transaction`` — faithful to the paper: one Base proof per
  transaction, merged pairwise (Fig. 10/11);
* ``batched`` — one Base proof for the whole sequence (the transition is
  the list), an ablation point for §5.4.1's performance discussion.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro import observability
from repro.latus.state import LatusState
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    LatusTransaction,
    PaymentTx,
)
from repro.latus.utxo import Utxo
from repro.snark.circuit import CircuitBuilder, Wire
from repro.snark.gadgets.arith import AMOUNT_BITS, enforce_sum_with_fee
from repro.snark.gadgets.mimc import mimc_hash_gadget
from repro.snark.pool import ProverPool
from repro.snark.recursive import (
    CompositionStats,
    RecursiveComposer,
    TransitionProof,
)

_TRACER = observability.tracer()
_EPOCHS_PROVED = observability.registry().counter(
    "repro_latus_epochs_proved_total",
    "withdrawal-epoch state-transition proofs built",
    labelnames=("strategy",),
)


def _utxo_leaf_wire(builder: CircuitBuilder, utxo: Utxo) -> Wire:
    """Allocate a UTXO and enforce its MiMC leaf recomputation; returns the
    amount wire (range-checked)."""
    addr = builder.alloc(utxo.addr)
    amount = builder.alloc(utxo.amount)
    builder.enforce_range(amount, AMOUNT_BITS, "utxo/amount-range")
    nonce = builder.alloc(utxo.nonce)
    leaf = mimc_hash_gadget(builder, [addr, amount, nonce])
    expected = builder.alloc(utxo.leaf_value)
    builder.enforce_equal(leaf, expected, "utxo/leaf")
    return amount


class LatusTransitionSystem:
    """The paper's state-transition system for Latus (Def. 2.4 instance).

    Transitions are single :data:`LatusTransaction` values; ``apply`` is
    functional (returns a fresh state) so proofs never alias node state.
    """

    name = "latus-v1"

    def apply(self, transition: LatusTransaction, state: LatusState) -> LatusState:
        """``update(t, s)``: returns the successor state or raises (⊥)."""
        successor = state.copy()
        successor.apply(transition)
        return successor

    def digest(self, state: LatusState) -> int:
        """``H(state)`` as a field element."""
        return state.digest()

    def synthesize_transition(
        self,
        builder: CircuitBuilder,
        state: LatusState,
        transition: LatusTransaction,
        next_state: LatusState,
    ) -> None:
        """Real R1CS for the arithmetizable core of the transition."""
        if isinstance(transition, PaymentTx):
            input_amounts = [
                _utxo_leaf_wire(builder, i.utxo) for i in transition.inputs
            ]
            output_amounts = [
                _utxo_leaf_wire(builder, o) for o in transition.outputs
            ]
            enforce_sum_with_fee(builder, input_amounts, output_amounts)
        elif isinstance(transition, BackwardTransferTx):
            input_amounts = [
                _utxo_leaf_wire(builder, i.utxo) for i in transition.inputs
            ]
            bt_amounts = []
            for bt in transition.backward_transfers:
                amount = builder.alloc(bt.amount)
                builder.enforce_range(amount, AMOUNT_BITS, "bt/amount-range")
                bt_amounts.append(amount)
            enforce_sum_with_fee(builder, input_amounts, bt_amounts)
        elif isinstance(transition, ForwardTransfersTx):
            # Conservation: every parseable FT either mints its amount or
            # refunds it; burned (unparseable) FTs vanish by design.
            minted = [_utxo_leaf_wire(builder, o) for o in transition.outputs]
            refunded = []
            for bt in transition.rejected:
                amount = builder.alloc(bt.amount)
                builder.enforce_range(amount, AMOUNT_BITS, "ft-reject/range")
                refunded.append(amount)
            total = builder.sum(minted + refunded)
            expected = sum(o.amount for o in transition.outputs) + sum(
                bt.amount for bt in transition.rejected
            )
            builder.enforce_equal(total, builder.constant(expected), "ft/total")
        elif isinstance(transition, BackwardTransferRequestsTx):
            consumed = [_utxo_leaf_wire(builder, u) for u in transition.inputs]
            paid = []
            for bt in transition.backward_transfers:
                amount = builder.alloc(bt.amount)
                builder.enforce_range(amount, AMOUNT_BITS, "btr/amount-range")
                paid.append(amount)
            # BTRs pay out exactly what they consume (no fee path).
            builder.enforce_equal(
                builder.sum(consumed), builder.sum(paid), "btr/conservation"
            )


@dataclass(frozen=True)
class _BatchedTransition:
    """A whole transaction sequence treated as one transition (ablation)."""

    transactions: tuple[LatusTransaction, ...]


class BatchedLatusSystem:
    """Transition system whose single step applies a full batch."""

    name = "latus-batched-v1"

    #: The batched base circuit's shape tracks the whole epoch's transaction
    #: mix, so templates would churn every epoch — keep it on full synthesis.
    template_stable = False

    def __init__(self) -> None:
        self._inner = LatusTransitionSystem()

    def apply(self, transition: _BatchedTransition, state: LatusState) -> LatusState:
        if not transition.transactions:
            # The identity transition: used for heartbeat certificates of
            # epochs in which nothing happened on the sidechain.
            return state.copy()
        current = state
        for tx in transition.transactions:
            current = self._inner.apply(tx, current)
        return current

    def digest(self, state: LatusState) -> int:
        return state.digest()

    def synthesize_transition(
        self,
        builder: CircuitBuilder,
        state: LatusState,
        transition: _BatchedTransition,
        next_state: LatusState,
    ) -> None:
        current = state
        for tx in transition.transactions:
            following = self._inner.apply(tx, current)
            self._inner.synthesize_transition(builder, current, tx, following)
            current = following


@dataclass(frozen=True)
class EpochProofResult:
    """The per-epoch state-transition proof plus its build statistics."""

    proof: TransitionProof
    final_state: LatusState
    stats: CompositionStats


class EpochProver:
    """Builds the single per-epoch proof feeding the withdrawal certificate.

    ``strategy`` selects between the paper's per-transaction recursion and
    the batched ablation; both produce a proof verifiable by the same
    composer exposed as :attr:`composer` (the per-transaction one), so the
    certificate circuit validates either uniformly via
    :meth:`verify_epoch_proof`.
    """

    def __init__(
        self,
        strategy: str = "per_transaction",
        parallel_workers: int | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if strategy not in ("per_transaction", "batched"):
            raise ValueError(f"unknown proving strategy {strategy!r}")
        self.strategy = strategy
        #: Default worker count for :meth:`prove_epoch`; None = serial.
        self.parallel_workers = parallel_workers
        self.chunk_size = chunk_size
        self.composer = RecursiveComposer(LatusTransitionSystem())
        self._batched_composer = RecursiveComposer(BatchedLatusSystem())
        self._pool: ProverPool | None = None

    # -- pool lifecycle -----------------------------------------------------------

    def _resolve_workers(self, parallel: bool | int | None) -> int | None:
        """Map a ``prove_epoch(parallel=...)`` argument to a worker count."""
        if parallel is None:
            return self.parallel_workers
        if parallel is False:
            return None
        if parallel is True:
            return os.cpu_count() or 1
        return int(parallel)

    def _ensure_pool(self, workers: int) -> ProverPool:
        """The persistent pool, rebuilt only when the worker count changes."""
        pool = self._pool
        if pool is not None and pool.stats.requested_workers != max(1, workers):
            pool.close()
            pool = None
        if pool is None:
            pool = ProverPool(max_workers=workers, chunk_size=self.chunk_size)
            self.composer.register_keys(pool)
            self._pool = pool
        return pool

    def close(self) -> None:
        """Shut down the worker pool, if one was ever started (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "EpochProver":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- proving ------------------------------------------------------------------

    def prove_epoch(
        self,
        start_state: LatusState,
        transitions: Sequence[LatusTransaction],
        parallel: bool | int | None = None,
    ) -> EpochProofResult:
        """Prove the whole epoch's transition (Fig. 11's final merge).

        ``parallel`` selects the proving pipeline: ``None`` uses the
        prover's configured ``parallel_workers`` (serial when unset),
        ``False`` forces the serial path, ``True`` uses one worker per CPU,
        and an integer requests that many workers.  Parallel and serial
        paths produce identical root proofs, public inputs and proof counts;
        only the wall-clock shape (and the pool fields on
        :class:`CompositionStats`) differ.  The batched strategy is a single
        base proof, so it always proves serially.

        An epoch with no transitions (a pure heartbeat) delegates to
        :meth:`prove_empty_epoch`, which proves the identity transition.
        """
        if not transitions:
            return self.prove_empty_epoch(start_state)
        with _TRACER.span(
            "epoch/prove", strategy=self.strategy, transitions=len(transitions)
        ):
            if self.strategy == "per_transaction":
                workers = self._resolve_workers(parallel)
                pool = self._ensure_pool(workers) if workers else None
                proof, final_state, stats = self.composer.prove_sequence(
                    start_state, list(transitions), pool=pool
                )
            else:
                stats = CompositionStats()
                proof, final_state = self._batched_composer.prove_base(
                    start_state, _BatchedTransition(tuple(transitions)), stats
                )
        _EPOCHS_PROVED.labels(strategy=self.strategy).inc()
        return EpochProofResult(proof=proof, final_state=final_state, stats=stats)

    def prove_empty_epoch(self, start_state: LatusState) -> EpochProofResult:
        """The heartbeat case: an epoch with no state transitions.

        Proven as a batched identity over zero transactions is disallowed by
        the system, so we emit a degenerate transition proof for the digest
        pair ``(d, d)`` via the batched composer's base circuit with an empty
        marker transaction.
        """
        stats = CompositionStats()
        with _TRACER.span("epoch/prove", strategy="heartbeat", transitions=0):
            proof, final_state = self._batched_composer.prove_base(
                start_state, _BatchedTransition(()), stats
            )
        _EPOCHS_PROVED.labels(strategy="heartbeat").inc()
        return EpochProofResult(proof=proof, final_state=final_state, stats=stats)

    def verify_epoch_proof(self, proof: TransitionProof) -> bool:
        """Verify a proof produced by either strategy."""
        return self.composer.verify(proof) or self._batched_composer.verify(proof)
