"""A simple Latus wallet: key management, coin selection, tx building."""

from __future__ import annotations

from repro.core.transfers import BackwardTransfer
from repro.crypto.keys import KeyPair
from repro.errors import LatusError
from repro.latus.node import LatusNode
from repro.latus.transactions import (
    BackwardTransferTx,
    PaymentTx,
    sign_backward_transfer,
    sign_payment,
)
from repro.latus.utxo import Utxo, address_to_field, derive_nonce


class LatusWallet:
    """Tracks one key pair's coins on a Latus node and builds transactions."""

    def __init__(self, node: LatusNode, keypair: KeyPair) -> None:
        self.node = node
        self.keypair = keypair
        self.address_field = address_to_field(keypair.address)
        self._nonce_counter = 0

    # -- queries ----------------------------------------------------------------

    def utxos(self) -> list[Utxo]:
        """All currently unspent outputs owned by this wallet."""
        return [
            u for u in self.node.utxo_index.values() if u.addr == self.address_field
        ]

    def balance(self) -> int:
        """Total spendable coins."""
        return sum(u.amount for u in self.utxos())

    # -- coin selection ------------------------------------------------------------

    def _select(self, amount: int) -> list[Utxo]:
        selected: list[Utxo] = []
        total = 0
        for utxo in sorted(self.utxos(), key=lambda u: (-u.amount, u.nonce)):
            selected.append(utxo)
            total += utxo.amount
            if total >= amount:
                return selected
        raise LatusError(f"insufficient funds: have {total}, need {amount}")

    def _fresh_nonce(self, salt: bytes) -> int:
        self._nonce_counter += 1
        return derive_nonce(
            self.keypair.address, salt, self._nonce_counter.to_bytes(8, "little")
        )

    # -- transaction building ----------------------------------------------------------

    def pay(self, receiver_addr: bytes, amount: int, fee: int = 0) -> PaymentTx:
        """Build, sign and submit a payment of ``amount`` to ``receiver_addr``.

        ``receiver_addr`` is a 32-byte address (as produced by
        :class:`~repro.crypto.keys.KeyPair`).
        """
        if amount <= 0:
            raise LatusError("payment amount must be positive")
        inputs = self._select(amount + fee)
        total_in = sum(u.amount for u in inputs)
        outputs = [
            Utxo(
                addr=address_to_field(receiver_addr),
                amount=amount,
                nonce=self._fresh_nonce(b"pay"),
            )
        ]
        change = total_in - amount - fee
        if change > 0:
            outputs.append(
                Utxo(
                    addr=self.address_field,
                    amount=change,
                    nonce=self._fresh_nonce(b"change"),
                )
            )
        tx = sign_payment([(u, self.keypair) for u in inputs], outputs)
        self.node.submit_transaction(tx)
        return tx

    def withdraw(self, mc_receiver_addr: bytes, amount: int) -> BackwardTransferTx:
        """Build, sign and submit a backward transfer to a mainchain address.

        A BTTx has no sidechain outputs (§5.3.3): all input value leaves the
        sidechain.  When selected coins exceed ``amount``, the surplus is
        withdrawn too, as a second backward transfer to the same mainchain
        receiver (callers wanting exact change should split with
        :meth:`pay` first).
        """
        if amount <= 0:
            raise LatusError("withdrawal amount must be positive")
        inputs = self._select(amount)
        total_in = sum(u.amount for u in inputs)
        bts = [BackwardTransfer(receiver_addr=mc_receiver_addr, amount=amount)]
        if total_in > amount:
            bts.append(
                BackwardTransfer(
                    receiver_addr=mc_receiver_addr, amount=total_in - amount
                )
            )
        tx = sign_backward_transfer([(u, self.keypair) for u in inputs], bts)
        self.node.submit_transaction(tx)
        return tx
