"""Independent sidechain auditing.

A third party holding only (a) the sidechain's registered configuration,
(b) a mainchain node, and (c) a candidate sidechain block history can
re-verify everything the protocol promises without trusting the serving
node: block signatures and slot leadership, reference contiguity and
commitment proofs, full state re-execution, per-block digest commitments,
and agreement between locally recomputed epoch data and the certificates
the mainchain adopted.

This is the observability counterpart of §5.5.1's "verify that all
SC-related transactions were correctly synchronized ... without the need
to download and verify [the MC block] body" — here applied to the whole
sidechain history.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bootstrap import SidechainConfig
from repro.core.transfers import bt_list_root
from repro.errors import StateTransitionError, ZendooError
from repro.latus.block import SidechainBlock
from repro.latus.consensus.ouroboros import (
    LeaderSchedule,
    genesis_seed,
    next_epoch_seed,
)
from repro.latus.consensus.stake import StakeDistribution
from repro.latus.mc_ref import verify_mc_ref
from repro.latus.params import LatusParams
from repro.latus.state import LatusState
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    PaymentTx,
)
from repro.latus.utxo import Utxo, address_to_field
from repro.mainchain.node import MainchainNode


@dataclass
class AuditReport:
    """Findings of one audit run."""

    blocks_verified: int = 0
    transitions_applied: int = 0
    mc_references_verified: int = 0
    epochs_checked: int = 0
    certificate_mismatches: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no violation or certificate mismatch was found."""
        return not self.violations and not self.certificate_mismatches


class SidechainAuditor:
    """Re-verifies a full Latus history against the mainchain record."""

    def __init__(
        self,
        config: SidechainConfig,
        params: LatusParams,
        mc_node: MainchainNode,
        creator_address: bytes,
    ) -> None:
        self.config = config
        self.params = params
        self.mc = mc_node
        self.creator_field = address_to_field(creator_address)

    def audit(self, blocks: list[SidechainBlock]) -> AuditReport:
        """Replay and check ``blocks``; returns the full report.

        The audit never raises on a protocol violation — it records it and
        stops replaying (later blocks cannot be validated against a broken
        state).
        """
        report = AuditReport()
        state = LatusState(self.params.mst_depth)
        utxo_index: dict[int, Utxo] = {}
        seeds = {0: genesis_seed(self.config.ledger_id)}
        stakes = {0: StakeDistribution.from_mapping({})}
        expected_mc_height = self.config.start_block
        prev_hash = b"\x00" * 32
        epoch_bts: list = []
        epoch_id = 0

        for block in blocks:
            # --- structural and consensus checks
            if block.parent_hash != prev_hash:
                report.violations.append(
                    f"block {block.height}: broken parent link"
                )
                break
            if not block.verify_signature():
                report.violations.append(f"block {block.height}: bad signature")
                break
            consensus_epoch = block.slot // self.params.slots_per_epoch
            for epoch in range(max(seeds) + 1, consensus_epoch + 1):
                seeds[epoch] = next_epoch_seed(seeds[epoch - 1], epoch)
                stakes[epoch] = StakeDistribution.from_utxos(utxo_index.values())
            schedule = LeaderSchedule(
                epoch=consensus_epoch,
                seed=seeds[consensus_epoch],
                distribution=stakes[consensus_epoch],
                slots_per_epoch=self.params.slots_per_epoch,
                bootstrap_leader=self.creator_field,
            )
            if not schedule.is_leader(
                block.forger_addr, block.slot % self.params.slots_per_epoch
            ):
                report.violations.append(
                    f"block {block.height}: forger is not the slot leader"
                )
                break

            # --- reference checks
            reference_failure = False
            for ref in block.mc_refs:
                if ref.mc_height != expected_mc_height:
                    report.violations.append(
                        f"block {block.height}: non-contiguous MC reference "
                        f"{ref.mc_height} (expected {expected_mc_height})"
                    )
                    reference_failure = True
                    break
                mc_hash = self.mc.state.block_hash_at(ref.mc_height)
                if ref.mc_block_hash != mc_hash:
                    report.violations.append(
                        f"block {block.height}: reference to a non-active MC block"
                    )
                    reference_failure = True
                    break
                try:
                    verify_mc_ref(ref, self.config.ledger_id)
                except ZendooError as exc:
                    report.violations.append(
                        f"block {block.height}: reference commitment failed ({exc})"
                    )
                    reference_failure = True
                    break
                expected_mc_height += 1
                report.mc_references_verified += 1
            if reference_failure:
                break

            # --- state re-execution
            execution_failure = False
            for tx in block.ordered_transitions():
                try:
                    state.apply(tx)
                except StateTransitionError as exc:
                    report.violations.append(
                        f"block {block.height}: invalid transition ({exc})"
                    )
                    execution_failure = True
                    break
                self._index(tx, utxo_index)
                report.transitions_applied += 1
            if execution_failure:
                break
            if state.digest() != block.state_digest:
                report.violations.append(
                    f"block {block.height}: state digest mismatch"
                )
                break

            # --- withdrawal-epoch bookkeeping + MC cross-check
            if (
                block.mc_refs
                and block.mc_refs[-1].mc_height
                == self.config.schedule.last_height(epoch_id)
            ):
                epoch_bts = list(state.backward_transfers)
                self._check_certificate(report, epoch_id, epoch_bts, block)
                state.start_new_epoch()
                epoch_id += 1
                report.epochs_checked += 1

            prev_hash = block.hash
            report.blocks_verified += 1

        return report

    def _check_certificate(
        self,
        report: AuditReport,
        epoch_id: int,
        bt_list: list,
        last_block: SidechainBlock,
    ) -> None:
        """Compare the locally recomputed epoch against the adopted cert."""
        entry = self.mc.state.cctp.sidechains.get(self.config.ledger_id)
        record = entry.certificates.get(epoch_id) if entry else None
        if record is None:
            return  # not adopted (yet) — nothing to cross-check
        cert = record.certificate
        if bt_list_root(tuple(bt_list)) != bt_list_root(cert.bt_list):
            report.certificate_mismatches.append(
                f"epoch {epoch_id}: adopted BTList differs from re-execution"
            )
        if cert.quality != last_block.height:
            report.certificate_mismatches.append(
                f"epoch {epoch_id}: adopted quality {cert.quality} != "
                f"recomputed height {last_block.height}"
            )

    @staticmethod
    def _index(tx, utxo_index: dict[int, Utxo]) -> None:
        if isinstance(tx, PaymentTx):
            for signed in tx.inputs:
                utxo_index.pop(signed.utxo.nonce, None)
            for utxo in tx.outputs:
                utxo_index[utxo.nonce] = utxo
        elif isinstance(tx, BackwardTransferTx):
            for signed in tx.inputs:
                utxo_index.pop(signed.utxo.nonce, None)
        elif isinstance(tx, ForwardTransfersTx):
            for utxo in tx.outputs:
                utxo_index[utxo.nonce] = utxo
        elif isinstance(tx, BackwardTransferRequestsTx):
            for utxo in tx.inputs:
                utxo_index.pop(utxo.nonce, None)
