"""The Latus sidechain construction (paper §5)."""

from repro.latus.audit import AuditReport, SidechainAuditor
from repro.latus.block import SidechainBlock, forge_block
from repro.latus.mc_ref import (
    MCBlockReference,
    build_mc_ref,
    extract_sidechain_slice,
    verify_mc_ref,
)
from repro.latus.mst import MerkleStateTree
from repro.latus.mst_delta import MstDelta, untouched_since, verify_unspent_across_epochs
from repro.latus.node import CertificateAnchor, EpochLedger, LatusNode
from repro.latus.params import TEST_LATUS_PARAMS, LatusParams
from repro.latus.proof_market import (
    DispatchResult,
    ProofDispatcher,
    ProofWorker,
    RewardStatement,
)
from repro.latus.proofs import EpochProofResult, EpochProver, LatusTransitionSystem
from repro.latus.state import LatusState
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    LatusTransaction,
    PaymentTx,
    SignedInput,
    build_btr_tx,
    build_forward_transfers_tx,
    ft_output,
    pack_receiver_metadata,
    parse_receiver_metadata,
    sign_backward_transfer,
    sign_payment,
    utxo_from_btr_proofdata,
)
from repro.latus.utxo import Utxo, address_to_field, derive_nonce
from repro.latus.wallet import LatusWallet
from repro.latus.wcert import (
    LatusWCertCircuit,
    WCertWitness,
    WithdrawalCertificateBuilder,
    latus_proofdata,
)
from repro.latus.withdrawal_circuits import (
    LatusBtrCircuit,
    LatusCswCircuit,
    WithdrawalWitness,
    sign_withdrawal,
    withdrawal_auth_message,
)

__all__ = [
    "AuditReport",
    "BackwardTransferRequestsTx",
    "BackwardTransferTx",
    "CertificateAnchor",
    "DispatchResult",
    "EpochLedger",
    "EpochProofResult",
    "EpochProver",
    "ForwardTransfersTx",
    "LatusBtrCircuit",
    "LatusCswCircuit",
    "LatusNode",
    "LatusParams",
    "LatusState",
    "LatusTransaction",
    "LatusTransitionSystem",
    "LatusWCertCircuit",
    "LatusWallet",
    "MCBlockReference",
    "MerkleStateTree",
    "MstDelta",
    "PaymentTx",
    "ProofDispatcher",
    "ProofWorker",
    "RewardStatement",
    "SidechainAuditor",
    "SidechainBlock",
    "SignedInput",
    "TEST_LATUS_PARAMS",
    "Utxo",
    "WCertWitness",
    "WithdrawalCertificateBuilder",
    "WithdrawalWitness",
    "address_to_field",
    "build_btr_tx",
    "build_forward_transfers_tx",
    "build_mc_ref",
    "derive_nonce",
    "extract_sidechain_slice",
    "forge_block",
    "ft_output",
    "latus_proofdata",
    "pack_receiver_metadata",
    "parse_receiver_metadata",
    "sign_backward_transfer",
    "sign_payment",
    "sign_withdrawal",
    "untouched_since",
    "utxo_from_btr_proofdata",
    "verify_mc_ref",
    "verify_unspent_across_epochs",
    "withdrawal_auth_message",
]
