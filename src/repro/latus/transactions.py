"""The four Latus transaction types (paper §5.3).

* :class:`PaymentTx` — multi-input multi-output payments (§5.3.1);
* :class:`ForwardTransfersTx` — MC-authorized coinbase minting synced
  forward transfers, with a rejection path for failed FTs (§5.3.2);
* :class:`BackwardTransferTx` — sidechain-initiated withdrawals (§5.3.3);
* :class:`BackwardTransferRequestsTx` — MC-submitted withdrawal requests
  synchronized into the sidechain (§5.3.4).

Payment-like transactions are authorized by Schnorr signatures over the
transaction digest; MC-defined transactions (FTTx/BTRTx) are deterministic
functions of the referenced MC block content and the sidechain state, so
every honest node derives byte-identical copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.transfers import BackwardTransfer, BackwardTransferRequest, ForwardTransfer
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair, address_of
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.errors import LatusError
from repro.latus.mst import MerkleStateTree
from repro.latus.utxo import Utxo, address_to_field, derive_nonce

#: Latus ``receiverMetadata`` layout: receiver address ∥ payback address.
METADATA_BYTES: int = 64


def pack_receiver_metadata(receiver_addr: bytes, payback_addr: bytes) -> bytes:
    """Build the Latus forward-transfer metadata (§5.3.2)."""
    if len(receiver_addr) != 32 or len(payback_addr) != 32:
        raise LatusError("addresses must be 32 bytes")
    return receiver_addr + payback_addr


def parse_receiver_metadata(metadata: bytes) -> tuple[bytes, bytes] | None:
    """Parse metadata into ``(receiver, payback)``; None when malformed."""
    if len(metadata) != METADATA_BYTES:
        return None
    return metadata[:32], metadata[32:]


@dataclass(frozen=True)
class SignedInput:
    """A spent UTXO with the authorizing public key and signature."""

    utxo: Utxo
    pubkey: PublicKey
    signature: Signature

    def owner_matches(self) -> bool:
        """True when the pubkey hashes to the UTXO's owner address."""
        return address_to_field(address_of(self.pubkey)) == self.utxo.addr

    def encode_unsigned(self) -> bytes:
        return (
            Encoder()
            .var_bytes(self.utxo.encode())
            .var_bytes(self.pubkey.to_bytes())
            .done()
        )

    def encode(self) -> bytes:
        return (
            Encoder()
            .var_bytes(self.utxo.encode())
            .var_bytes(self.pubkey.to_bytes())
            .var_bytes(self.signature.to_bytes())
            .done()
        )


class _LatusTxBase:
    """Shared id/digest machinery for Latus transactions."""

    kind: int = 0

    def encode_unsigned(self) -> bytes:  # pragma: no cover - overridden
        raise NotImplementedError

    @cached_property
    def txid(self) -> bytes:
        """The transaction id (signature-independent)."""
        return hash_bytes(self.encode_unsigned(), b"latus/txid")

    @property
    def signing_digest(self) -> bytes:
        """The message each input signature must cover."""
        return hash_bytes(self.encode_unsigned(), b"latus/sighash")


@dataclass(frozen=True)
class PaymentTx(_LatusTxBase):
    """A regular sidechain payment (§5.3.1)."""

    inputs: tuple[SignedInput, ...]
    outputs: tuple[Utxo, ...]

    kind = 1

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode_unsigned()))
        enc.sequence(self.outputs, lambda e, o: e.var_bytes(o.encode()))
        return enc.done()

    def encode(self) -> bytes:
        """Full wire encoding including input signatures."""
        enc = Encoder().u8(self.kind)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode()))
        enc.sequence(self.outputs, lambda e, o: e.var_bytes(o.encode()))
        return enc.done()

    @property
    def total_in(self) -> int:
        """Sum of input amounts."""
        return sum(i.utxo.amount for i in self.inputs)

    @property
    def total_out(self) -> int:
        """Sum of output amounts."""
        return sum(o.amount for o in self.outputs)


@dataclass(frozen=True)
class BackwardTransferTx(_LatusTxBase):
    """A sidechain-initiated withdrawal (§5.3.3).

    All "outputs" are backward transfers: unspendable on the sidechain,
    reclaimed on the mainchain through the next withdrawal certificate.
    """

    inputs: tuple[SignedInput, ...]
    backward_transfers: tuple[BackwardTransfer, ...]

    kind = 2

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode_unsigned()))
        enc.sequence(self.backward_transfers, lambda e, bt: e.var_bytes(bt.encode()))
        return enc.done()

    def encode(self) -> bytes:
        """Full wire encoding including input signatures."""
        enc = Encoder().u8(self.kind)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode()))
        enc.sequence(self.backward_transfers, lambda e, bt: e.var_bytes(bt.encode()))
        return enc.done()

    @property
    def total_in(self) -> int:
        """Sum of input amounts."""
        return sum(i.utxo.amount for i in self.inputs)

    @property
    def total_out(self) -> int:
        """Sum of withdrawn amounts."""
        return sum(bt.amount for bt in self.backward_transfers)


@dataclass(frozen=True)
class ForwardTransfersTx(_LatusTxBase):
    """The MC-authorized minting transaction syncing forward transfers.

    Deterministically derived from the referenced MC block's FT list and the
    sidechain state at application point (see :func:`build_forward_transfers_tx`):
    every valid FT mints an output; every failed FT (malformed metadata with
    a recoverable payback address, or an MST slot collision) spawns a
    backward transfer refunding the sender (§5.3.2).  An FT whose metadata
    is entirely unparseable is burned — the coins remain locked in the
    sidechain's mainchain balance (documented substitution: the paper leaves
    this case undefined).
    """

    mc_block_id: bytes
    transfers: tuple[ForwardTransfer, ...]
    outputs: tuple[Utxo, ...]
    rejected: tuple[BackwardTransfer, ...]

    kind = 3

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind).raw(self.mc_block_id)
        enc.sequence(self.transfers, lambda e, ft: e.var_bytes(ft.encode()))
        enc.sequence(self.outputs, lambda e, o: e.var_bytes(o.encode()))
        enc.sequence(self.rejected, lambda e, bt: e.var_bytes(bt.encode()))
        return enc.done()

    def encode(self) -> bytes:
        """Full wire encoding (MC-defined transactions carry no witnesses)."""
        return self.encode_unsigned()


@dataclass(frozen=True)
class BackwardTransferRequestsTx(_LatusTxBase):
    """The synchronization transaction for MC-submitted BTRs (§5.3.4).

    ``inputs`` are the UTXOs consumed by *accepted* requests; rejected BTRs
    (those whose claimed UTXO is no longer in the state) spawn nothing.
    """

    mc_block_id: bytes
    requests: tuple[BackwardTransferRequest, ...]
    inputs: tuple[Utxo, ...]
    backward_transfers: tuple[BackwardTransfer, ...]

    kind = 4

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind).raw(self.mc_block_id)
        enc.sequence(self.requests, lambda e, r: e.var_bytes(r.encode()))
        enc.sequence(self.inputs, lambda e, u: e.var_bytes(u.encode()))
        enc.sequence(self.backward_transfers, lambda e, bt: e.var_bytes(bt.encode()))
        return enc.done()

    def encode(self) -> bytes:
        """Full wire encoding (MC-defined transactions carry no witnesses)."""
        return self.encode_unsigned()


LatusTransaction = (
    PaymentTx | BackwardTransferTx | ForwardTransfersTx | BackwardTransferRequestsTx
)


# ---------------------------------------------------------------------------
# Deterministic builders for the MC-defined transactions
# ---------------------------------------------------------------------------


def ft_output(ft: ForwardTransfer, receiver_addr: bytes) -> Utxo:
    """The UTXO a forward transfer mints (nonce derived from the FT id)."""
    return Utxo(
        addr=address_to_field(receiver_addr),
        amount=ft.amount,
        nonce=derive_nonce(ft.id),
    )


def build_forward_transfers_tx(
    mc_block_id: bytes,
    transfers: tuple[ForwardTransfer, ...],
    mst: MerkleStateTree,
) -> ForwardTransfersTx:
    """Derive the FTTx for a referenced MC block (§5.3.2's semantics).

    The derivation is a pure function of ``(mc_block_id, transfers, mst)``,
    so every honest node computes the same transaction.  Slot availability
    is evaluated sequentially: earlier FTs in the block occupy slots seen by
    later ones.
    """
    outputs: list[Utxo] = []
    rejected: list[BackwardTransfer] = []
    planned_slots: set[int] = set()
    for ft in transfers:
        parsed = parse_receiver_metadata(ft.receiver_metadata)
        if parsed is None:
            continue  # unparseable: burned (see class docstring)
        receiver_addr, payback_addr = parsed
        utxo = ft_output(ft, receiver_addr)
        position = mst.position_of(utxo)
        if mst.slot_occupied(position) or position in planned_slots:
            rejected.append(
                BackwardTransfer(receiver_addr=payback_addr, amount=ft.amount)
            )
            continue
        planned_slots.add(position)
        outputs.append(utxo)
    return ForwardTransfersTx(
        mc_block_id=mc_block_id,
        transfers=transfers,
        outputs=tuple(outputs),
        rejected=tuple(rejected),
    )


def utxo_from_btr_proofdata(proofdata: tuple[int, ...]) -> Utxo | None:
    """Reconstruct the claimed UTXO from a Latus BTR's proofdata.

    Latus declares ``proofdata = (addr, amount, nonce)`` (§5.5.3.2's
    ``{utxo}``); returns None when the shape is wrong.
    """
    if len(proofdata) != 3:
        return None
    addr, amount, nonce = proofdata
    if amount >= 1 << 64:
        return None
    return Utxo(addr=addr, amount=amount, nonce=nonce)


def build_btr_tx(
    mc_block_id: bytes,
    requests: tuple[BackwardTransferRequest, ...],
    mst: MerkleStateTree,
) -> BackwardTransferRequestsTx:
    """Derive the BTRTx for a referenced MC block (§5.3.4's semantics).

    A request is accepted iff its claimed UTXO is (still) present in the
    state and the requested amount matches; double-claims within the same
    block are rejected deterministically (first wins).
    """
    inputs: list[Utxo] = []
    backward_transfers: list[BackwardTransfer] = []
    consumed: set[int] = set()
    for request in requests:
        utxo = utxo_from_btr_proofdata(request.proofdata)
        if utxo is None:
            continue
        position = mst.position_of(utxo)
        if position in consumed or not mst.contains(utxo):
            continue
        if request.amount != utxo.amount:
            continue
        consumed.add(position)
        inputs.append(utxo)
        backward_transfers.append(
            BackwardTransfer(receiver_addr=request.receiver, amount=request.amount)
        )
    return BackwardTransferRequestsTx(
        mc_block_id=mc_block_id,
        requests=requests,
        inputs=tuple(inputs),
        backward_transfers=tuple(backward_transfers),
    )


# ---------------------------------------------------------------------------
# Payment-side builders
# ---------------------------------------------------------------------------


def sign_payment(
    inputs: list[tuple[Utxo, KeyPair]], outputs: list[Utxo]
) -> PaymentTx:
    """Build and sign a payment transaction."""
    draft = PaymentTx(
        inputs=tuple(
            SignedInput(utxo=u, pubkey=kp.public, signature=Signature(e=1, s=1))
            for u, kp in inputs
        ),
        outputs=tuple(outputs),
    )
    digest = draft.signing_digest
    return PaymentTx(
        inputs=tuple(
            SignedInput(utxo=u, pubkey=kp.public, signature=kp.sign(digest))
            for u, kp in inputs
        ),
        outputs=tuple(outputs),
    )


def sign_backward_transfer(
    inputs: list[tuple[Utxo, KeyPair]],
    backward_transfers: list[BackwardTransfer],
) -> BackwardTransferTx:
    """Build and sign a backward-transfer transaction."""
    draft = BackwardTransferTx(
        inputs=tuple(
            SignedInput(utxo=u, pubkey=kp.public, signature=Signature(e=1, s=1))
            for u, kp in inputs
        ),
        backward_transfers=tuple(backward_transfers),
    )
    digest = draft.signing_digest
    return BackwardTransferTx(
        inputs=tuple(
            SignedInput(utxo=u, pubkey=kp.public, signature=kp.sign(digest))
            for u, kp in inputs
        ),
        backward_transfers=tuple(backward_transfers),
    )
