"""Mainchain block references (paper §5.5.1).

A Latus block embeds references to MC blocks; each reference carries the MC
header, the Merkle evidence tying the synchronized transactions to the
header's ``SCTxsCommitment`` (``mproof`` when the block has data for this
sidechain, ``proofOfNoData`` otherwise), and the derived synchronization
transactions (FTTx / BTRTx) plus the withdrawal certificate if one was
included for this sidechain.

``verify_mc_ref`` checks exactly what §5.5.1 promises: "all SC-related
transactions were correctly synchronized from the MC block without the need
to download and verify its body."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commitment import AbsenceProof, PresenceProof, build_commitment
from repro.core.transfers import (
    BackwardTransferRequest,
    ForwardTransfer,
    WithdrawalCertificate,
)
from repro.errors import ConsensusError
from repro.latus.mst import MerkleStateTree
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    ForwardTransfersTx,
    build_btr_tx,
    build_forward_transfers_tx,
)
from repro.mainchain.block import Block as MainchainBlock
from repro.mainchain.block import BlockHeader as MainchainBlockHeader
from repro.mainchain.transaction import BtrTx, CertificateTx, CoinTransaction


@dataclass(frozen=True)
class MCBlockReference:
    """One referenced mainchain block and this sidechain's slice of it."""

    header: MainchainBlockHeader
    mproof: PresenceProof | None
    proof_of_no_data: AbsenceProof | None
    forward_transfers: ForwardTransfersTx | None
    bt_requests: BackwardTransferRequestsTx | None
    wcert: WithdrawalCertificate | None

    @property
    def mc_block_hash(self) -> bytes:
        """Hash of the referenced MC block."""
        return self.header.hash

    @property
    def mc_height(self) -> int:
        """Height of the referenced MC block."""
        return self.header.height

    @property
    def has_data(self) -> bool:
        """True when the MC block contained anything for this sidechain."""
        return (
            self.forward_transfers is not None
            or self.bt_requests is not None
            or self.wcert is not None
        )


def extract_sidechain_slice(
    mc_block: MainchainBlock, ledger_id: bytes
) -> tuple[
    tuple[ForwardTransfer, ...],
    tuple[BackwardTransferRequest, ...],
    WithdrawalCertificate | None,
]:
    """Pull this sidechain's FTs, BTRs and certificate out of an MC block."""
    fts: list[ForwardTransfer] = []
    btrs: list[BackwardTransferRequest] = []
    wcert: WithdrawalCertificate | None = None
    for tx in mc_block.transactions:
        if isinstance(tx, CoinTransaction):
            fts.extend(ft for ft in tx.forward_transfers if ft.ledger_id == ledger_id)
        elif isinstance(tx, BtrTx):
            btrs.extend(r for r in tx.requests if r.ledger_id == ledger_id)
        elif isinstance(tx, CertificateTx) and tx.wcert.ledger_id == ledger_id:
            wcert = tx.wcert
    return tuple(fts), tuple(btrs), wcert


def build_mc_ref(
    mc_block: MainchainBlock, ledger_id: bytes, mst: MerkleStateTree
) -> MCBlockReference:
    """Construct the reference a forger embeds for ``mc_block``.

    ``mst`` must be the sidechain state at the point the reference will be
    applied (the derived FTTx/BTRTx depend on it deterministically).
    References within one SC block must be built sequentially against the
    evolving state.
    """
    fts, btrs, wcert = extract_sidechain_slice(mc_block, ledger_id)

    # Recompute the block's full commitment tree to extract proofs.
    all_fts: list[ForwardTransfer] = []
    all_btrs: list[BackwardTransferRequest] = []
    all_wcerts: list[WithdrawalCertificate] = []
    for tx in mc_block.transactions:
        if isinstance(tx, CoinTransaction):
            all_fts.extend(tx.forward_transfers)
        elif isinstance(tx, BtrTx):
            all_btrs.extend(tx.requests)
        elif isinstance(tx, CertificateTx):
            all_wcerts.append(tx.wcert)
    tree = build_commitment(all_fts, all_btrs, all_wcerts)

    has_data = bool(fts or btrs or wcert is not None)
    mproof = tree.prove_presence(ledger_id) if has_data else None
    no_data = tree.prove_absence(ledger_id) if not has_data else None

    ft_tx = (
        build_forward_transfers_tx(mc_block.hash, fts, mst) if fts else None
    )
    # FTTx outputs occupy slots the BTRTx derivation must observe.
    btr_view = mst
    if ft_tx is not None and ft_tx.outputs:
        btr_view = mst.copy()
        for utxo in ft_tx.outputs:
            btr_view.add(utxo)
    btr_tx = build_btr_tx(mc_block.hash, btrs, btr_view) if btrs else None

    return MCBlockReference(
        header=mc_block.header,
        mproof=mproof,
        proof_of_no_data=no_data,
        forward_transfers=ft_tx,
        bt_requests=btr_tx,
        wcert=wcert,
    )


def verify_mc_ref(ref: MCBlockReference, ledger_id: bytes) -> None:
    """Check a reference's commitment evidence; raises on failure.

    Stateful correctness of the derived FTTx/BTRTx is checked later, when
    the transactions are applied against the state (their deterministic
    re-derivation happens there).
    """
    commitment_root = ref.header.sc_txs_commitment
    if ref.has_data:
        if ref.mproof is None:
            raise ConsensusError("reference with data must carry an mproof")
        fts = (
            ref.forward_transfers.transfers
            if ref.forward_transfers is not None
            else ()
        )
        btrs = ref.bt_requests.requests if ref.bt_requests is not None else ()
        if not ref.mproof.verify_payload(commitment_root, fts, btrs, ref.wcert):
            raise ConsensusError(
                "reference payload does not match the MC commitment"
            )
        if ref.forward_transfers is not None and not fts:
            raise ConsensusError("FTTx present but carries no transfers")
        if ref.bt_requests is not None and not btrs:
            raise ConsensusError("BTRTx present but carries no requests")
        for tx in (ref.forward_transfers, ref.bt_requests):
            if tx is not None and tx.mc_block_id != ref.mc_block_hash:
                raise ConsensusError("derived transaction references wrong MC block")
    else:
        if ref.proof_of_no_data is None:
            raise ConsensusError("reference without data must carry proofOfNoData")
        if not ref.proof_of_no_data.verify(commitment_root):
            raise ConsensusError("proofOfNoData does not verify")
        if ref.proof_of_no_data.ledger_id != ledger_id:
            raise ConsensusError("proofOfNoData is for a different sidechain")
    if ref.mproof is not None and ref.mproof.ledger_id != ledger_id:
        raise ConsensusError("mproof is for a different sidechain")
