"""Fee-funded reward pools for the Latus proof market (arXiv:2103.13754).

The Latus Incentive Scheme paper replaces §5.4.1's flat "reward per valid
submission" with a *fee split*: the transaction fees of an epoch fund one
reward pool, the block forger keeps a fixed share for assembling the block
and paying the certificate submission, and the remainder is divided among
the provers of the recursion tree's nodes **position-weighted** — a node's
payout is proportional to the number of base transitions beneath it
(``span``), so a Merge proof near the root, which vouches for the whole
epoch, pays more than a leaf Base proof.

Everything here is exact integer arithmetic.  The division dust of the
position-weighted split goes to the forger, so the conservation identity

    ``pool_in == forger_reward + sum(prover_rewards)``

holds to the unit; :class:`~repro.latus.market.dispatcher.MarketDispatcher`
gates every epoch on it (``repro_market_conservation_checks_total``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.encoding import Encoder
from repro.errors import MarketError

#: Basis-point denominator of the forger's share.
BP_DENOM = 10_000


@dataclass(frozen=True)
class TreeTask:
    """One node of the recursion tree, as a unit of paid work.

    ``kind`` is ``"base"`` or ``"merge"``; ``level`` 0 for bases, 1.. for
    merge levels; ``index`` the node's position within its level; ``span``
    the number of base transitions the node's proof covers (its reward
    weight).
    """

    kind: str
    level: int
    index: int
    span: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.level, self.index)

    def encode(self) -> bytes:
        return (
            Encoder()
            .u8(0 if self.kind == "base" else 1)
            .u32(self.level)
            .u32(self.index)
            .u32(self.span)
            .done()
        )


def tree_tasks(base_count: int) -> list[TreeTask]:
    """Enumerate the recursion tree for ``base_count`` transitions.

    Mirrors :meth:`repro.snark.recursive.RecursiveComposer.merge_all`
    exactly: adjacent pairs merge at every level and an odd tail carries
    upward *without* producing a task (nobody re-proves a carried proof, so
    nobody is paid twice for it).
    """
    if base_count <= 0:
        raise MarketError("an epoch needs at least one transition to prove")
    tasks = [TreeTask(kind="base", level=0, index=i, span=1) for i in range(base_count)]
    spans = [1] * base_count
    level = 1
    while len(spans) > 1:
        next_spans = []
        for i in range(0, len(spans) - 1, 2):
            span = spans[i] + spans[i + 1]
            tasks.append(TreeTask(kind="merge", level=level, index=i // 2, span=span))
            next_spans.append(span)
        if len(spans) % 2 == 1:
            next_spans.append(spans[-1])
        spans = next_spans
        level += 1
    return tasks


class RewardPool:
    """Splits one epoch's fee income between the forger and the provers.

    ``pool_in`` is the total funding (transaction fees plus anything
    carried in, e.g. the previous epoch's slash pot); ``forger_share_bp``
    the forger's cut in basis points.  :meth:`allocate` computes the
    position-weighted per-task rewards; the rounding dust is returned so
    the caller can hand it to the forger and keep conservation exact.
    """

    def __init__(self, pool_in: int, forger_share_bp: int) -> None:
        if pool_in < 0:
            raise MarketError(f"reward pool cannot be negative, got {pool_in}")
        if not 0 <= forger_share_bp <= BP_DENOM:
            raise MarketError(
                f"forger share must be within [0, {BP_DENOM}] bp, got {forger_share_bp}"
            )
        self.pool_in = pool_in
        self.forger_share_bp = forger_share_bp
        self.forger_cut = pool_in * forger_share_bp // BP_DENOM
        self.prover_pool = pool_in - self.forger_cut

    def allocate(self, tasks: Sequence[TreeTask]) -> tuple[dict[tuple[int, int], int], int]:
        """Per-task rewards keyed by ``(level, index)`` plus the dust.

        ``reward(task) = prover_pool * task.span // total_weight`` — integer
        floor division, with ``dust = prover_pool - sum(rewards)`` returned
        separately.  ``sum(rewards) + dust == prover_pool`` always.
        """
        if not tasks:
            raise MarketError("cannot allocate rewards over an empty task tree")
        total_weight = sum(task.span for task in tasks)
        rewards = {
            task.key: self.prover_pool * task.span // total_weight for task in tasks
        }
        dust = self.prover_pool - sum(rewards.values())
        return rewards, dust


@dataclass(frozen=True)
class RewardStatement:
    """The itemized, canonical payout record of one market epoch.

    ``rewards`` and ``slashed`` are name-sorted tuples so two identically
    seeded epochs produce byte-identical :meth:`encode` output — the
    determinism unit the property tests and adversarial scenarios gate on.
    """

    epoch: int
    fees_in: int
    carried_in: int
    forger_share_bp: int
    forger_reward: int
    rewards: tuple[tuple[str, int], ...]
    slashed: tuple[tuple[str, int], ...]
    #: Slashed stake accumulated for the *next* epoch's pool (not part of
    #: this epoch's conservation identity — it funds the following one).
    slash_pot_out: int

    @property
    def pool_in(self) -> int:
        """Total funding of this epoch's pool."""
        return self.fees_in + self.carried_in

    @property
    def total_paid(self) -> int:
        """Sum of all prover rewards."""
        return sum(amount for _, amount in self.rewards)

    @property
    def total_slashed(self) -> int:
        """Sum of all stake slashed this epoch."""
        return sum(amount for _, amount in self.slashed)

    @property
    def conservation_ok(self) -> bool:
        """The exact-conservation identity: fees in == rewards + forger out."""
        return self.pool_in == self.forger_reward + self.total_paid

    def reward_of(self, name: str) -> int:
        """One prover's reward (0 when absent)."""
        for prover, amount in self.rewards:
            if prover == name:
                return amount
        return 0

    def slashed_of(self, name: str) -> int:
        """One prover's slashed stake (0 when absent)."""
        for prover, amount in self.slashed:
            if prover == name:
                return amount
        return 0

    def encode(self) -> bytes:
        """Canonical byte form (the byte-identical determinism unit)."""
        enc = (
            Encoder()
            .u32(self.epoch)
            .u64(self.fees_in)
            .u64(self.carried_in)
            .u32(self.forger_share_bp)
            .u64(self.forger_reward)
            .u64(self.slash_pot_out)
        )
        enc.sequence(
            self.rewards, lambda e, item: e.text(item[0]).u64(item[1])
        )
        enc.sequence(
            self.slashed, lambda e, item: e.text(item[0]).u64(item[1])
        )
        return enc.done()

    def items(self) -> Iterator[tuple[str, int]]:
        """Iterate ``(prover, reward)`` pairs in canonical order."""
        return iter(self.rewards)
