"""The Latus proof market (arXiv:2103.13754, "Latus Incentive Scheme").

The paper's §5.4.1 sketch ("random assignment + a reward per valid
submission") lives on in :mod:`repro.latus.proof_market`; this package is
the follow-up paper's full mechanism:

* :mod:`~repro.latus.market.rewards` — fee-funded pools, forger/prover
  split, position-weighted per-node payouts, exact integer conservation;
* :mod:`~repro.latus.market.assignment` — stake-weighted deterministic
  task assignment with offender-excluding reassignment;
* :mod:`~repro.latus.market.ledger` — persistent prover accounts:
  strikes, slashing, bans carried across epochs;
* :mod:`~repro.latus.market.dispatcher` — the market itself, plus the
  :class:`ProverBehaviour` family the adversarial scenarios use.
"""

from repro.latus.market.assignment import StakeWeightedAssigner
from repro.latus.market.dispatcher import (
    FORGER,
    CartelBehaviour,
    CensorBehaviour,
    HonestBehaviour,
    LazyBehaviour,
    MarketDispatcher,
    MarketEpochReport,
    MarketProver,
    MarketTask,
    ProverBehaviour,
    SpamBehaviour,
)
from repro.latus.market.ledger import (
    LedgerParams,
    ProverAccount,
    ProverLedger,
    RejectionOutcome,
)
from repro.latus.market.rewards import (
    BP_DENOM,
    RewardPool,
    RewardStatement,
    TreeTask,
    tree_tasks,
)

__all__ = [
    "BP_DENOM",
    "FORGER",
    "CartelBehaviour",
    "CensorBehaviour",
    "HonestBehaviour",
    "LazyBehaviour",
    "LedgerParams",
    "MarketDispatcher",
    "MarketEpochReport",
    "MarketProver",
    "MarketTask",
    "ProverAccount",
    "ProverBehaviour",
    "ProverLedger",
    "RejectionOutcome",
    "RewardPool",
    "RewardStatement",
    "SpamBehaviour",
    "StakeWeightedAssigner",
    "TreeTask",
    "tree_tasks",
]
