"""The Latus proof market: assignment, validation, payout, punishment.

:class:`MarketDispatcher` runs one epoch of distributed proving under the
arXiv:2103.13754 incentive scheme.  Its contract, and the property every
adversarial scenario gates on:

* **Soundness is free** — the final root proof is byte-identical to what a
  single honest prover produces (`EpochProver`-equivalent), no matter what
  the market participants do.  Provers can only delay or forfeit, never
  corrupt.
* **Liveness is the forger's** — when no market prover delivers a task
  (everyone refused, spammed or got banned mid-epoch), the forger proves it
  itself and takes that task's reward.  An attack can therefore redirect
  payouts but never stall the epoch.
* **Conservation is exact** — every epoch ends with an integer-exact
  ``pool_in == forger_reward + sum(prover_rewards)`` check; a violation
  raises :class:`~repro.errors.MarketError` (and counts in
  ``repro_market_conservation_checks_total{result="violated"}``).

Misbehaviour is modelled as a pluggable :class:`ProverBehaviour` deciding
per task whether to prove honestly, silently refuse, or submit garbage.
All randomness is seeded hashing (assignment draws, garbage bytes), so a
fixed seed and prover set replays a byte-identical schedule — the
determinism unit ``MarketEpochReport.schedule`` captures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observability
from repro.crypto.hashing import hash_bytes
from repro.encoding import Encoder
from repro.errors import MarketError
from repro.latus.market.assignment import StakeWeightedAssigner
from repro.latus.market.ledger import LedgerParams, ProverLedger
from repro.latus.market.rewards import RewardPool, RewardStatement, TreeTask, tree_tasks
from repro.latus.proofs import LatusTransitionSystem
from repro.latus.state import LatusState
from repro.latus.transactions import LatusTransaction
from repro.network.faults import FaultPlan
from repro.snark.pool import WorkerFaultInjector
from repro.snark.proving import PROOF_SIZE, Proof
from repro.snark.recursive import RecursiveComposer, TransitionProof

_REGISTRY = observability.registry()
_EPOCHS = _REGISTRY.counter(
    "repro_market_epochs_total", "market epochs proven"
).labels()
_TASKS = _REGISTRY.counter(
    "repro_market_tasks_total", "recursion-tree tasks dispatched", ("kind",)
)
_ASSIGNMENTS = _REGISTRY.counter(
    "repro_market_assignments_total", "task attempts assigned to provers"
).labels()
_REASSIGNMENTS = _REGISTRY.counter(
    "repro_market_reassignments_total",
    "tasks reassigned after a failed attempt",
).labels()
_REJECTIONS = _REGISTRY.counter(
    "repro_market_rejections_total",
    "submissions rejected by the forger",
    ("reason",),
)
_FEES = _REGISTRY.counter(
    "repro_market_fees_collected_total", "fee units collected into reward pools"
).labels()
_PAID = _REGISTRY.counter(
    "repro_market_rewards_paid_total", "reward units paid to market provers"
).labels()
_FALLBACKS = _REGISTRY.counter(
    "repro_market_forger_fallbacks_total",
    "tasks the forger proved itself after the market failed them",
).labels()
_CENSORSHIP = _REGISTRY.counter(
    "repro_market_censorship_suspected_total",
    "base tasks whose transaction proof was refused by an assigned prover",
).labels()
_CARTEL = _REGISTRY.counter(
    "repro_market_cartel_suspected_total",
    "merge levels refused by two or more distinct provers",
).labels()
_CONSERVATION = _REGISTRY.counter(
    "repro_market_conservation_checks_total",
    "epoch-end reward conservation checks",
    ("result",),
)

#: Identity the forger's own payouts are recorded under.
FORGER = "forger"

#: Schedule-entry outcome codes (canonical encoding of one attempt).
_OUTCOMES = {
    "accepted": 0,
    "no_submission": 1,
    "invalid_proof": 2,
    "transport": 3,
    "forger_fallback": 4,
}


@dataclass(frozen=True)
class MarketTask:
    """One recursion-tree node as presented to a prover's behaviour.

    Extends the reward-side :class:`TreeTask` coordinates with what a
    behaviour can condition on: the transaction id a base task proves
    (``b""`` for merges) and the task's stable position in the tree
    enumeration (``ordinal``, the index a
    :class:`~repro.snark.pool.WorkerFaultInjector` draws on).
    """

    kind: str
    level: int
    index: int
    span: int
    txid: bytes
    ordinal: int

    @property
    def key(self) -> tuple[int, int]:
        return (self.level, self.index)


class ProverBehaviour:
    """How a prover responds to an assigned task.

    :meth:`decide` returns ``"prove"`` (honest work), ``"refuse"`` (no
    submission) or ``"garbage"`` (an invalid proof).  Decisions must be
    pure in the task — determinism of the whole market depends on it.
    """

    def decide(self, task: MarketTask) -> str:
        raise NotImplementedError


class HonestBehaviour(ProverBehaviour):
    """Proves everything it is assigned."""

    def decide(self, task: MarketTask) -> str:
        return "prove"


class LazyBehaviour(ProverBehaviour):
    """Refuses tasks — all of them, or a seeded fraction via an injector.

    With an ``injector`` the refusal pattern reuses the pool layer's
    :class:`~repro.snark.pool.WorkerFaultInjector` draw on the task's tree
    ordinal, so the same seed produces the same laziness every run.
    """

    def __init__(self, injector: WorkerFaultInjector | None = None) -> None:
        self.injector = injector

    def decide(self, task: MarketTask) -> str:
        if self.injector is None or self.injector.should_fail(task.ordinal):
            return "refuse"
        return "prove"


class SpamBehaviour(ProverBehaviour):
    """Submits garbage for every task (provable fraud: always slashed)."""

    def decide(self, task: MarketTask) -> str:
        return "garbage"


class CensorBehaviour(ProverBehaviour):
    """Proves everything except the base proofs of targeted transactions."""

    def __init__(self, targets: frozenset[bytes]) -> None:
        self.targets = frozenset(targets)

    def decide(self, task: MarketTask) -> str:
        if task.kind == "base" and task.txid in self.targets:
            return "refuse"
        return "prove"


class CartelBehaviour(ProverBehaviour):
    """Withholds an entire merge level (colluding provers share one)."""

    def __init__(self, level: int) -> None:
        self.level = level

    def decide(self, task: MarketTask) -> str:
        if task.kind == "merge" and task.level == self.level:
            return "refuse"
        return "prove"


@dataclass
class MarketProver:
    """One market participant: identity, bonded stake, behaviour."""

    name: str
    stake: int
    behaviour: ProverBehaviour = field(default_factory=HonestBehaviour)
    proofs_produced: int = 0
    proofs_rejected: int = 0


@dataclass(frozen=True)
class MarketEpochReport:
    """Everything one market epoch produced and observed."""

    proof: TransitionProof
    final_state: LatusState
    statement: RewardStatement
    base_tasks: int
    merge_tasks: int
    assignments: int
    reassignments: int
    #: Task keys the forger had to prove itself.
    fallback_tasks: tuple[tuple[int, int], ...]
    #: Base-task txids refused by at least one assigned prover.
    censorship_suspected: tuple[bytes, ...]
    #: Merge levels refused by two or more distinct provers.
    cartel_levels: tuple[int, ...]
    #: Every rejection as ``(prover, reason)`` in schedule order.
    rejections: tuple[tuple[str, str], ...]
    #: Canonical bytes of the full attempt schedule (the determinism unit:
    #: same seed + same prover set ⇒ byte-identical schedule).
    schedule: bytes


class MarketDispatcher:
    """Runs epochs of the Latus proof market over a prover set."""

    def __init__(
        self,
        provers: list[MarketProver],
        *,
        seed: bytes = b"latus-market",
        forger_share_bp: int = 2_000,
        base_subsidy: int = 0,
        ledger: ProverLedger | None = None,
        ledger_params: LedgerParams | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if not provers:
            raise MarketError("a market needs at least one registered prover")
        names = [p.name for p in provers]
        if len(set(names)) != len(names):
            raise MarketError("prover names must be unique")
        if FORGER in names:
            raise MarketError(f"{FORGER!r} is reserved for the block forger")
        self.provers = {p.name: p for p in provers}
        self.seed = seed
        self.forger_share_bp = forger_share_bp
        self.base_subsidy = base_subsidy
        self.ledger = ledger if ledger is not None else ProverLedger(
            params=ledger_params if ledger_params is not None else LedgerParams()
        )
        for prover in provers:
            if prover.name not in self.ledger.accounts:
                self.ledger.register(prover.name, prover.stake)
        self.fault_plan = fault_plan
        self.assigner = StakeWeightedAssigner(seed)
        self.composer = RecursiveComposer(LatusTransitionSystem())
        self._submissions = 0

    # -- fees ----------------------------------------------------------------------

    def _fees_of(self, transitions: list[LatusTransaction]) -> int:
        """The epoch's fee income: per-tx (inputs − outputs) plus subsidy.

        MC-defined transaction types carry no fee fields; they contribute
        only the per-transition base subsidy.
        """
        fees = 0
        for tx in transitions:
            total_in = getattr(tx, "total_in", None)
            total_out = getattr(tx, "total_out", None)
            if total_in is not None and total_out is not None:
                fees += max(0, total_in - total_out)
        return fees + self.base_subsidy * len(transitions)

    # -- submissions ---------------------------------------------------------------

    def _garbage_proof(self, template: TransitionProof, task: MarketTask) -> TransitionProof:
        """A deterministic invalid submission: right shape, junk proof bytes."""
        material = (
            Encoder().var_bytes(self.seed).u32(task.level).u32(task.index).done()
        )
        junk = b"".join(
            hash_bytes(material + bytes([i]), b"market/garbage")
            for i in range(PROOF_SIZE // 32)
        )
        return TransitionProof(
            from_digest=template.from_digest,
            to_digest=template.to_digest,
            proof=Proof(data=junk),
            is_merge=template.is_merge,
            span=template.span,
            depth=template.depth,
        )

    def _delivered(self, prover_name: str) -> bool:
        """Whether the network delivers this prover's next submission."""
        self._submissions += 1
        if self.fault_plan is None:
            return True
        return self.fault_plan.decide(prover_name, FORGER, float(self._submissions)).deliver

    # -- epoch ----------------------------------------------------------------------

    def prove_epoch(
        self, start_state: LatusState, transitions: list[LatusTransaction]
    ) -> MarketEpochReport:
        """Run one full market epoch over ``transitions``.

        Raises :class:`MarketError` only for protocol violations (broken
        conservation, empty epoch); participant misbehaviour is absorbed by
        reassignment and the forger fallback.
        """
        if not transitions:
            raise MarketError("empty epochs are proven by the heartbeat path")

        fees = self._fees_of(transitions)
        carried = self.ledger.take_pot()
        pool = RewardPool(fees + carried, self.forger_share_bp)
        tasks = tree_tasks(len(transitions))
        task_rewards, dust = pool.allocate(tasks)
        _FEES.inc(fees)

        # the state chain is inherently sequential; compute it up front so
        # honest task results are pure functions of the task coordinates
        states = [start_state]
        for tx in transitions:
            states.append(self.composer.system.apply(tx, states[-1]))

        market_tasks = [
            MarketTask(
                kind=t.kind,
                level=t.level,
                index=t.index,
                span=t.span,
                txid=transitions[t.index].txid if t.kind == "base" else b"",
                ordinal=ordinal,
            )
            for ordinal, t in enumerate(tasks)
        ]
        by_key = {t.key: t for t in market_tasks}

        epoch_rewards: dict[str, int] = {}
        epoch_slashed: dict[str, int] = {}
        rejections: list[tuple[str, str]] = []
        schedule: list[bytes] = []
        base_refusals: set[bytes] = set()
        merge_refusers: dict[int, set[str]] = {}
        fallbacks: list[tuple[int, int]] = []
        counters = {"assignments": 0, "reassignments": 0}

        def run_task(task: MarketTask, prove_honest) -> TransitionProof:
            """Dispatch one task until a valid submission arrives.

            ``prove_honest`` computes the (deterministic) honest result;
            it is evaluated lazily and at most once — every honest prover
            produces byte-identical proofs, so one evaluation stands for
            whichever prover delivered it.
            """
            _TASKS.labels(kind=task.kind).inc()
            honest: TransitionProof | None = None
            excluded: set[str] = set()
            for attempt in range(3 * len(self.provers) + 3):
                try:
                    name = self.assigner.pick(
                        self.ledger.active_stakes(),
                        task.level,
                        task.index,
                        attempt,
                        excluded=excluded,
                    )
                except MarketError:
                    break  # nobody left: forger fallback below
                counters["assignments"] += 1
                _ASSIGNMENTS.inc()
                if attempt > 0:
                    counters["reassignments"] += 1
                    _REASSIGNMENTS.inc()
                prover = self.provers[name]
                action = prover.behaviour.decide(task)
                reason = None
                if action == "prove":
                    if honest is None:
                        honest = prove_honest()
                    if not self._delivered(name):
                        reason = "transport"
                elif action == "garbage":
                    if honest is None:
                        honest = prove_honest()
                    candidate = self._garbage_proof(honest, task)
                    delivered = self._delivered(name)
                    if not delivered:
                        reason = "transport"
                    elif not self.composer.verify(candidate):
                        reason = "invalid_proof"
                else:  # refuse
                    reason = "no_submission"
                if reason is None:
                    prover.proofs_produced += 1
                    reward = task_rewards[task.key]
                    epoch_rewards[name] = epoch_rewards.get(name, 0) + reward
                    self.ledger.credit(name, reward)
                    _PAID.inc(reward)
                    schedule.append(self._schedule_entry(task, attempt, name, "accepted"))
                    assert honest is not None
                    return honest
                # rejection path: strike, maybe slash/ban, exclude, retry
                prover.proofs_rejected += 1
                outcome = self.ledger.note_rejection(name, reason)
                if outcome.slashed:
                    epoch_slashed[name] = epoch_slashed.get(name, 0) + outcome.slashed
                rejections.append((name, reason))
                _REJECTIONS.labels(reason=reason).inc()
                schedule.append(self._schedule_entry(task, attempt, name, reason))
                if reason == "no_submission":
                    if task.kind == "base":
                        if task.txid not in base_refusals:
                            base_refusals.add(task.txid)
                            _CENSORSHIP.inc()
                    else:
                        refusers = merge_refusers.setdefault(task.level, set())
                        if name not in refusers:
                            refusers.add(name)
                            if len(refusers) == 2:
                                _CARTEL.inc()
                excluded.add(name)
            # liveness floor: the forger proves the task and takes its reward
            fallbacks.append(task.key)
            _FALLBACKS.inc()
            schedule.append(self._schedule_entry(task, -1, FORGER, "forger_fallback"))
            if honest is None:
                honest = prove_honest()
            return honest

        # --- level 0: base proofs, mirroring EpochProver's serial chain
        proofs: list[TransitionProof] = []
        for index, tx in enumerate(transitions):
            task = by_key[(0, index)]
            proofs.append(
                run_task(
                    task,
                    lambda i=index: self.composer.prove_base(states[i], transitions[i])[0],
                )
            )

        # --- merge levels, pairwise with odd-tail carry (merge_all pairing)
        merge_count = 0
        level = 1
        while len(proofs) > 1:
            next_proofs = []
            for i in range(0, len(proofs) - 1, 2):
                task = by_key[(level, i // 2)]
                left, right = proofs[i], proofs[i + 1]
                next_proofs.append(
                    run_task(task, lambda l=left, r=right: self.composer.merge(l, r))
                )
                merge_count += 1
            if len(proofs) % 2 == 1:
                next_proofs.append(proofs[-1])
            proofs = next_proofs
            level += 1

        # --- payout statement + exact conservation gate
        fallback_reward = sum(task_rewards[key] for key in fallbacks)
        statement = RewardStatement(
            epoch=self.ledger.epoch,
            fees_in=fees,
            carried_in=carried,
            forger_share_bp=self.forger_share_bp,
            forger_reward=pool.forger_cut + dust + fallback_reward,
            rewards=tuple(sorted(epoch_rewards.items())),
            slashed=tuple(sorted(epoch_slashed.items())),
            slash_pot_out=self.ledger.slash_pot,
        )
        if not statement.conservation_ok:
            _CONSERVATION.labels(result="violated").inc()
            raise MarketError(
                f"reward conservation violated: pool_in={statement.pool_in} != "
                f"forger {statement.forger_reward} + paid {statement.total_paid}"
            )
        _CONSERVATION.labels(result="ok").inc()
        _EPOCHS.inc()

        cartel_levels = tuple(
            sorted(lvl for lvl, who in merge_refusers.items() if len(who) >= 2)
        )
        report = MarketEpochReport(
            proof=proofs[0],
            final_state=states[-1],
            statement=statement,
            base_tasks=len(transitions),
            merge_tasks=merge_count,
            assignments=counters["assignments"],
            reassignments=counters["reassignments"],
            fallback_tasks=tuple(fallbacks),
            censorship_suspected=tuple(sorted(base_refusals)),
            cartel_levels=cartel_levels,
            rejections=tuple(rejections),
            schedule=b"".join(schedule),
        )
        self.ledger.advance_epoch()
        return report

    def _schedule_entry(
        self, task: MarketTask, attempt: int, prover: str, outcome: str
    ) -> bytes:
        return (
            Encoder()
            .u8(0 if task.kind == "base" else 1)
            .u32(task.level)
            .u32(task.index)
            .u32(attempt & 0xFFFFFFFF)
            .text(prover)
            .u8(_OUTCOMES[outcome])
            .done()
        )
