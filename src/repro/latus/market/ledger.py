"""Prover accounts: stake, strikes, slashing and bans across epochs.

The incentive paper backs assignment with *stake*: provers bond an amount,
misbehaviour burns part of it (slashing) and repeated misbehaviour excludes
the prover from assignment entirely (banning).  :class:`ProverLedger` is
that registry, and it is **persistent across epochs** — the dispatcher
advances it at every epoch boundary, bans tick down in epochs, and slashed
stake accumulates in a pot that funds the *next* epoch's reward pool (so
punishing an attacker literally pays the honest provers that cover for it).

Offence taxonomy (mirrors ``repro_market_rejections_total{reason}``):

``invalid_proof``
    A submission that failed verification — provable fraud, so it both
    strikes and slashes ``slash_bp_invalid`` basis points of current stake.
``no_submission``
    An assigned task the prover never delivered (lazy, censoring or
    colluding — the market cannot tell which).  Strikes only: absence is
    not attributable fraud.
``transport``
    A submission lost by the network (a :class:`~repro.network.faults.FaultPlan`
    decision).  Strikes only, same as ``no_submission`` — from the forger's
    view an undelivered proof is an undelivered proof.

``ban_after_strikes`` strikes within a single epoch ban the prover for
``ban_epochs`` epochs, effective immediately (mid-epoch reassignment skips
banned provers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observability
from repro.encoding import Encoder
from repro.errors import MarketError
from repro.latus.market.rewards import BP_DENOM

_REGISTRY = observability.registry()
_SLASHES = _REGISTRY.counter(
    "repro_market_slashes_total",
    "slashing events applied by the prover ledger",
).labels()
_SLASHED_UNITS = _REGISTRY.counter(
    "repro_market_slashed_units_total",
    "total stake units slashed by the prover ledger",
).labels()
_BANS = _REGISTRY.counter(
    "repro_market_bans_total",
    "provers banned after exceeding the per-epoch strike threshold",
).labels()

#: The rejection reasons the ledger recognises.
REASONS = ("invalid_proof", "no_submission", "transport")


@dataclass(frozen=True)
class LedgerParams:
    """Punishment policy knobs (defaults follow the incentive paper's
    qualitative shape: fraud is slashed, absence is struck, recidivism is
    banned)."""

    #: Basis points of *current* stake slashed per invalid submission.
    slash_bp_invalid: int = 500
    #: Strikes within one epoch that trigger a ban.
    ban_after_strikes: int = 3
    #: How many epochs a ban lasts.
    ban_epochs: int = 2

    def __post_init__(self) -> None:
        if not 0 <= self.slash_bp_invalid <= BP_DENOM:
            raise MarketError(
                f"slash_bp_invalid must be within [0, {BP_DENOM}], got "
                f"{self.slash_bp_invalid}"
            )
        if self.ban_after_strikes < 1:
            raise MarketError("ban_after_strikes must be at least 1")
        if self.ban_epochs < 1:
            raise MarketError("ban_epochs must be at least 1")


@dataclass
class ProverAccount:
    """One prover's persistent market state."""

    name: str
    stake: int
    strikes_total: int = 0
    strikes_epoch: int = 0
    slashed_total: int = 0
    rewards_total: int = 0
    #: First epoch the prover is eligible again; banned while
    #: ``current_epoch < banned_until``.
    banned_until: int = 0

    def banned(self, epoch: int) -> bool:
        return epoch < self.banned_until

    def encode(self) -> bytes:
        return (
            Encoder()
            .text(self.name)
            .u64(self.stake)
            .u32(self.strikes_total)
            .u32(self.strikes_epoch)
            .u64(self.slashed_total)
            .u64(self.rewards_total)
            .u32(self.banned_until)
            .done()
        )


@dataclass
class RejectionOutcome:
    """What the ledger did about one rejection."""

    struck: bool
    slashed: int
    banned: bool


@dataclass
class ProverLedger:
    """The persistent prover registry the market dispatches against."""

    params: LedgerParams = field(default_factory=LedgerParams)
    epoch: int = 0
    slash_pot: int = 0
    accounts: dict[str, ProverAccount] = field(default_factory=dict)

    # -- registration -------------------------------------------------------------

    def register(self, name: str, stake: int) -> ProverAccount:
        """Bond ``stake`` under ``name`` (names are unique)."""
        if name in self.accounts:
            raise MarketError(f"prover {name!r} is already registered")
        if stake <= 0:
            raise MarketError(f"prover {name!r} must bond positive stake, got {stake}")
        account = ProverAccount(name=name, stake=stake)
        self.accounts[name] = account
        return account

    def account(self, name: str) -> ProverAccount:
        try:
            return self.accounts[name]
        except KeyError:
            raise MarketError(f"unknown prover {name!r}") from None

    # -- assignment view ----------------------------------------------------------

    def active_stakes(self) -> list[tuple[str, int]]:
        """The assignable population: unbanned provers with stake, name-sorted."""
        return sorted(
            (account.name, account.stake)
            for account in self.accounts.values()
            if account.stake > 0 and not account.banned(self.epoch)
        )

    # -- accounting ---------------------------------------------------------------

    def credit(self, name: str, amount: int) -> None:
        """Pay a reward (rewards are income, not bonded stake)."""
        if amount < 0:
            raise MarketError(f"cannot credit a negative reward ({amount})")
        self.account(name).rewards_total += amount

    def note_rejection(self, name: str, reason: str) -> RejectionOutcome:
        """Strike (and for fraud, slash) a prover; ban on recidivism."""
        if reason not in REASONS:
            raise MarketError(f"unknown rejection reason {reason!r}")
        account = self.account(name)
        account.strikes_total += 1
        account.strikes_epoch += 1
        slashed = 0
        if reason == "invalid_proof":
            slashed = account.stake * self.params.slash_bp_invalid // BP_DENOM
            if slashed > 0:
                account.stake -= slashed
                account.slashed_total += slashed
                self.slash_pot += slashed
                _SLASHES.inc()
                _SLASHED_UNITS.inc(slashed)
        banned = False
        if (
            account.strikes_epoch >= self.params.ban_after_strikes
            and not account.banned(self.epoch)
        ):
            account.banned_until = self.epoch + self.params.ban_epochs
            banned = True
            _BANS.inc()
        return RejectionOutcome(struck=True, slashed=slashed, banned=banned)

    def take_pot(self) -> int:
        """Drain the slash pot (the next epoch's extra pool funding)."""
        value = self.slash_pot
        self.slash_pot = 0
        return value

    def advance_epoch(self) -> None:
        """Epoch boundary: bans age by one epoch, per-epoch strikes reset."""
        self.epoch += 1
        for account in self.accounts.values():
            account.strikes_epoch = 0

    # -- determinism --------------------------------------------------------------

    def encode(self) -> bytes:
        """Canonical byte form of the whole ledger state."""
        enc = Encoder().u32(self.epoch).u64(self.slash_pot)
        enc.sequence(
            sorted(self.accounts.values(), key=lambda a: a.name),
            lambda e, account: e.var_bytes(account.encode()),
        )
        return enc.done()
