"""Stake-weighted, incentive-compatible task assignment (arXiv:2103.13754).

The incentive paper's assignment rule: a recursion-tree node is assigned to
a registered prover with probability proportional to the prover's stake,
from randomness both sides can recompute — here, as everywhere in the
reproduction, a hash of the epoch seed and the task coordinates stands in
for the randomness beacon.  The properties that make the rule
incentive-compatible carry over directly:

* **Unpredictable but verifiable** — nobody can grind their way into a
  specific (profitable) node, and anyone can recheck who was supposed to
  prove what;
* **Identity-blind payouts** — a node's reward depends only on its tree
  position (see :mod:`repro.latus.market.rewards`), never on who proved
  it, so there is nothing to gain by trading assignments;
* **Offender-excluding reassignment** — a prover that failed a task is
  excluded from that task's retries (``excluded``), so rejecting work can
  never recapture the same reward later.  (This is exactly the bug class
  the legacy :mod:`repro.latus.proof_market` dispatcher had: a retry could
  hash back onto the worker that had just failed the task.)

Draws walk the eligible provers in sorted-name order with cumulative stake
ranges — the same construction as
:meth:`repro.latus.consensus.stake.StakeDistribution.owner_at` uses for
slot leaders — so a fixed seed reproduces a byte-identical schedule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.hashing import hash_bytes
from repro.encoding import Encoder
from repro.errors import MarketError

_DRAW_BYTES = 8


class StakeWeightedAssigner:
    """Deterministic stake-weighted choice of a prover for one task attempt."""

    def __init__(self, seed: bytes) -> None:
        self.seed = seed

    def draw(self, level: int, index: int, attempt: int) -> int:
        """The raw uniform draw for a task attempt (pure in the inputs)."""
        material = (
            Encoder().var_bytes(self.seed).u32(level).u32(index).u32(attempt).done()
        )
        digest = hash_bytes(material, b"market/assign")
        return int.from_bytes(digest[:_DRAW_BYTES], "little")

    def pick(
        self,
        stakes: Sequence[tuple[str, int]],
        level: int,
        index: int,
        attempt: int,
        excluded: Iterable[str] = (),
    ) -> str:
        """The prover assigned to ``(level, index)`` on ``attempt``.

        ``stakes`` is the eligible population as ``(name, stake)`` pairs;
        entries named in ``excluded`` or holding no stake are skipped.
        Raises :class:`MarketError` when nobody is eligible — the caller's
        cue to fall back to the forger's own prover (liveness must never
        depend on market participants).
        """
        shunned = set(excluded)
        eligible = sorted(
            (name, stake)
            for name, stake in stakes
            if stake > 0 and name not in shunned
        )
        total = sum(stake for _, stake in eligible)
        if total <= 0:
            raise MarketError(
                f"no eligible prover for task (level={level}, index={index})"
            )
        point = self.draw(level, index, attempt) % total
        cumulative = 0
        for name, stake in eligible:
            cumulative += stake
            if point < cumulative:
                return name
        raise AssertionError("unreachable: point below total but not matched")
