"""The ``mst_delta`` bit vector (paper §5.5.3.1 and Appendix A).

Each withdrawal certificate carries a fixed-size bit vector with one bit per
MST leaf; bit ``i`` is 1 iff leaf ``i`` was modified at least once during
the epoch.  Chaining deltas lets a user prove a UTXO committed in an *old*
certificate is still unspent — inclusion proof against the old MST root plus
untouched-bit checks across every subsequent delta — which is the paper's
defence against data-availability attacks by a compromised sidechain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.field import element_from_bytes
from repro.crypto.fixed_merkle import FieldMerkleProof
from repro.crypto.hashing import hash_bytes
from repro.errors import MstError
from repro.latus.utxo import Utxo


@dataclass(frozen=True)
class MstDelta:
    """A fixed-size modification bit vector for one withdrawal epoch."""

    depth: int
    touched: frozenset[int]

    def __post_init__(self) -> None:
        capacity = 1 << self.depth
        for position in self.touched:
            if not 0 <= position < capacity:
                raise MstError(f"touched position {position} out of range")

    @classmethod
    def from_positions(cls, depth: int, positions: Iterable[int]) -> "MstDelta":
        """Build a delta from the positions modified during the epoch."""
        return cls(depth=depth, touched=frozenset(positions))

    @property
    def capacity(self) -> int:
        """Number of bits (MST leaves)."""
        return 1 << self.depth

    def bit(self, position: int) -> int:
        """The modification bit of one leaf."""
        if not 0 <= position < self.capacity:
            raise MstError(f"position {position} out of range")
        return 1 if position in self.touched else 0

    def to_bitstring(self) -> str:
        """Human-readable form, e.g. Appendix A's ``11100001``."""
        return "".join(str(self.bit(i)) for i in range(self.capacity))

    def to_bytes(self) -> bytes:
        """Packed little-endian bit vector (bit ``i`` = leaf ``i``)."""
        packed = bytearray((self.capacity + 7) // 8)
        for position in self.touched:
            packed[position // 8] |= 1 << (position % 8)
        return bytes(packed)

    def digest_field(self) -> int:
        """A field-element digest — how the delta rides in ``proofdata``."""
        return element_from_bytes(hash_bytes(self.to_bytes(), b"latus/mst-delta"))

    def __or__(self, other: "MstDelta") -> "MstDelta":
        """Union of two deltas (touched in either epoch)."""
        if self.depth != other.depth:
            raise MstError("cannot combine deltas of different depths")
        return MstDelta(depth=self.depth, touched=self.touched | other.touched)


def untouched_since(deltas: Sequence[MstDelta], position: int) -> bool:
    """True when no delta in the sequence touched ``position``."""
    return all(delta.bit(position) == 0 for delta in deltas)


def verify_unspent_across_epochs(
    utxo: Utxo,
    inclusion_proof: FieldMerkleProof,
    old_mst_root: int,
    deltas: Sequence[MstDelta],
) -> bool:
    """The Appendix-A non-spend argument.

    Returns True iff ``utxo`` opens to ``old_mst_root`` (an MST root
    committed by some past certificate) *and* its slot is untouched by every
    ``mst_delta`` published since — hence it is still unspent in the latest
    committed state even if that state itself is unavailable.
    """
    position = utxo.position(inclusion_proof.depth)
    if inclusion_proof.position != position:
        return False
    if inclusion_proof.leaf != utxo.leaf_value:
        return False
    if not inclusion_proof.verify(old_mst_root):
        return False
    return untouched_since(deltas, position)
