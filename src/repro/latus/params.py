"""Latus sidechain parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatusParams:
    """Constants of a Latus sidechain instance.

    ``mst_depth`` bounds the UTXO population at ``2**mst_depth`` (paper
    §5.2); small depths make slot collisions likely, which is useful for
    exercising the forward-transfer failure path.  ``slots_per_epoch`` is
    the *consensus* (Ouroboros) epoch length in slots — independent from
    withdrawal epochs, as §5.1.1 stresses.
    """

    #: Depth of the Merkle State Tree; capacity is ``2**mst_depth`` UTXOs.
    mst_depth: int = 12

    #: Ouroboros consensus-epoch length, in slots.
    slots_per_epoch: int = 16

    #: Nominal slot duration in seconds (bookkeeping only in the simulation).
    slot_duration_seconds: int = 20

    @property
    def mst_capacity(self) -> int:
        """Maximum number of simultaneously unspent outputs."""
        return 1 << self.mst_depth


#: Small trees and short epochs for unit tests.
TEST_LATUS_PARAMS = LatusParams(mst_depth=8, slots_per_epoch=8)
