"""The Latus withdrawal-certificate SNARK and builder (paper §5.5.3.1).

The certificate for withdrawal epoch ``i`` commits to the post-epoch state
and proves, against the mainchain-enforced public input
``(quality, MH(BTList), H(B^{i-1}_last), H(B^i_last), MH(proofdata))``, the
full "WCert SNARK Statement" box of §5.5.3.1:

1. ``SB^i_last`` is the epoch's last block and chains back to the previous
   certificate's block;
2. the committed MST root is the root of the final state's MST;
3. the recursive epoch proof attests the transition between the states
   committed by consecutive certificates;
4. every MC block of the withdrawal epoch is referenced (endpoint binding
   to the public block hashes; contiguity is part of block validity,
   enforced per-reference during state transition);
5. ``BTList`` equals the final state's backward-transfer list;
6. ``quality`` is the height of ``SB^i_last``;
7. ``mst_delta`` reflects exactly the MST slots touched during the epoch.

Latus ``proofdata`` is ``(H(SB^i_last), H(state[MST]), mst_delta)`` as three
field elements; the ``MH(proofdata)`` public value is recomputed with the
real MiMC R1CS gadget inside the circuit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transfers import (
    BackwardTransfer,
    WithdrawalCertificate,
    bt_list_root,
)
from repro.crypto.field import element_from_bytes
from repro.latus.block import SidechainBlock
from repro.latus.mst_delta import MstDelta
from repro.latus.proofs import EpochProver
from repro.latus.state import LatusState
from repro.snark import proving
from repro.snark.circuit import Circuit, CircuitBuilder
from repro.snark.gadgets.mimc import mimc_hash_gadget
from repro.snark.proving import ProvingKey
from repro.snark.recursive import CompositionStats, TransitionProof


@dataclass(frozen=True)
class WCertWitness:
    """Everything the certificate prover holds (never sent to the MC)."""

    epoch_proof: TransitionProof
    start_state_digest: int
    final_state: LatusState
    bt_list: tuple[BackwardTransfer, ...]
    last_block: SidechainBlock
    prev_epoch_last_block_hash: bytes
    #: Hashes of the MC blocks referenced during the epoch, in MC order.
    referenced_mc_hashes: tuple[bytes, ...]
    mst_delta: MstDelta
    #: MST positions actually touched during the epoch (from the state tree).
    touched_positions: frozenset[int]
    #: Instrumentation of the epoch proof's construction (diagnostics and
    #: benchmarks only; not part of the proven statement).
    epoch_stats: CompositionStats | None = None


class LatusWCertCircuit(Circuit):
    """The withdrawal-certificate constraint system for Latus sidechains."""

    circuit_id = "latus/wcert-v1"

    def __init__(self, prover: EpochProver) -> None:
        self._prover = prover

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: WCertWitness,
    ) -> None:
        quality, mh_btlist, h_prev_last, h_last, mh_proofdata = public_input
        quality_wire = builder.alloc_public(quality)
        builder.alloc_public(mh_btlist)
        builder.alloc_public(h_prev_last)
        h_last_wire = builder.alloc_public(h_last)

        # --- rule 3: the recursive epoch proof verifies and spans exactly
        # the states committed by the previous and this certificate.
        builder.assert_native(
            self._prover.verify_epoch_proof(witness.epoch_proof),
            "wcert: epoch state-transition proof invalid",
        )
        builder.assert_native(
            witness.epoch_proof.from_digest == witness.start_state_digest,
            "wcert: epoch proof does not start at the previous state",
        )
        builder.assert_native(
            witness.epoch_proof.to_digest == witness.final_state.digest(),
            "wcert: epoch proof does not end at the final state",
        )

        # --- rules 1 & 6: SB_last chains correctly and quality = height.
        builder.assert_native(
            witness.last_block.state_digest == witness.final_state.digest(),
            "wcert: last block does not commit to the final state",
        )
        builder.enforce_equal(
            quality_wire,
            builder.constant(witness.last_block.height),
            "wcert/quality-is-height",
        )

        # --- rule 4: the epoch's MC blocks are referenced; endpoints bind
        # to the mainchain-enforced public block hashes.
        builder.assert_native(
            bool(witness.referenced_mc_hashes),
            "wcert: no MC blocks referenced in the epoch",
        )
        first_fe = element_from_bytes(witness.referenced_mc_hashes[0])
        last_fe = element_from_bytes(witness.referenced_mc_hashes[-1])
        builder.assert_native(
            last_fe == h_last_wire.value,
            "wcert: last referenced MC block is not the epoch's last block",
        )
        if h_prev_last != 0:
            # Epoch 0 has no predecessor; later epochs must start right
            # after the previous epoch's last MC block.
            builder.assert_native(
                element_from_bytes(witness.prev_epoch_last_block_hash)
                == h_prev_last,
                "wcert: previous-epoch boundary mismatch",
            )
        builder.assert_native(
            first_fe != h_prev_last or len(witness.referenced_mc_hashes) == 1,
            "wcert: epoch references start inside the previous epoch",
        )

        # --- rule 5: BTList is the final state's backward-transfer list.
        builder.assert_native(
            tuple(witness.final_state.backward_transfers) == witness.bt_list,
            "wcert: BTList does not match the state's backward transfers",
        )
        builder.assert_native(
            element_from_bytes(bt_list_root(witness.bt_list)) == mh_btlist,
            "wcert: MH(BTList) mismatch",
        )

        # --- rule 7: mst_delta is exactly the touched-slot set.
        builder.assert_native(
            witness.mst_delta.touched == witness.touched_positions,
            "wcert: mst_delta does not match the touched MST slots",
        )

        # --- rule 2 + proofdata binding, with real R1CS: recompute
        # MH(proofdata) from (H(SB_last), mst_root, delta_digest) via MiMC.
        sb_last_fe = builder.alloc(element_from_bytes(witness.last_block.hash))
        mst_root_wire = builder.alloc(witness.final_state.mst_root)
        delta_wire = builder.alloc(witness.mst_delta.digest_field())
        recomputed = mimc_hash_gadget(
            builder, [sb_last_fe, mst_root_wire, delta_wire]
        )
        mh_proofdata_wire = builder.alloc_public(mh_proofdata)
        builder.enforce_equal(recomputed, mh_proofdata_wire, "wcert/mh-proofdata")


def latus_proofdata(
    last_block_hash: bytes, mst_root: int, delta: MstDelta
) -> tuple[int, int, int]:
    """Latus's certificate ``proofdata`` triple (§5.5.3.1)."""
    return (element_from_bytes(last_block_hash), mst_root, delta.digest_field())


class WithdrawalCertificateBuilder:
    """Assembles, proves and packages certificates for the mainchain."""

    def __init__(self, ledger_id: bytes, prover: EpochProver) -> None:
        self.ledger_id = ledger_id
        self.prover = prover
        self._pk: ProvingKey
        self._pk, self.verifying_key = proving.setup(LatusWCertCircuit(prover))

    def build(
        self,
        epoch_id: int,
        witness: WCertWitness,
        h_prev_epoch_last: bytes,
        h_epoch_last: bytes,
    ) -> WithdrawalCertificate:
        """Produce the certificate, proving the full statement.

        ``h_prev_epoch_last``/``h_epoch_last`` are the epoch-boundary MC
        block hashes the mainchain will enforce in ``wcert_sysdata``.
        """
        proofdata = latus_proofdata(
            witness.last_block.hash,
            witness.final_state.mst_root,
            witness.mst_delta,
        )
        draft = WithdrawalCertificate(
            ledger_id=self.ledger_id,
            epoch_id=epoch_id,
            quality=witness.last_block.height,
            bt_list=witness.bt_list,
            proofdata=proofdata,
            proof=proving.Proof(data=bytes(proving.PROOF_SIZE)),
        )
        public_input = draft.public_input(h_prev_epoch_last, h_epoch_last)
        proof = proving.prove(self._pk, public_input, witness)
        return WithdrawalCertificate(
            ledger_id=self.ledger_id,
            epoch_id=epoch_id,
            quality=draft.quality,
            bt_list=draft.bt_list,
            proofdata=proofdata,
            proof=proof,
        )
