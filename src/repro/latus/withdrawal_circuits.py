"""Latus BTR and CSW circuits (paper §5.5.3.2 / §5.5.3.3).

Both operations prove, against the public input
``(H(Bw), nullifier, receiver, amount, MH(proofdata))``, the statement box
of §5.5.3.2:

* the claimed UTXO is present in the sidechain MST committed by the last
  withdrawal certificate (real R1CS: MiMC leaf recomputation + Merkle path
  to the committed root);
* the submitter owns the UTXO (Schnorr signature over the withdrawal
  message — native check, see DESIGN.md §4);
* ``amount`` equals the UTXO amount and ``nullifier`` is the hash of the
  UTXO (both enforced in-circuit);
* ``H(Bw)`` is the MC block carrying the anchoring certificate (native
  structural check against the witness's copy of that block).

The CSW circuit is "technically completely the same" (§5.5.3.3); it only
differs in its circuit id (hence its verification key) and in when the
mainchain accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transfers import WithdrawalCertificate
from repro.crypto.field import element_from_bytes
from repro.crypto.fixed_merkle import FieldMerkleProof
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair, address_of
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.latus.utxo import Utxo, address_to_field
from repro.mainchain.block import Block as MainchainBlock
from repro.mainchain.transaction import CertificateTx
from repro.snark.circuit import Circuit, CircuitBuilder
from repro.snark.gadgets.arith import AMOUNT_BITS
from repro.snark.gadgets.merkle import enforce_merkle_membership
from repro.snark.gadgets.mimc import mimc_hash_gadget

_AUTH_DOMAIN = b"latus/withdrawal-auth"


def withdrawal_auth_message(
    ledger_id: bytes, utxo: Utxo, receiver: bytes
) -> bytes:
    """The message a UTXO owner signs to authorize a BTR/CSW."""
    material = (
        Encoder()
        .raw(ledger_id)
        .var_bytes(utxo.encode())
        .var_bytes(receiver)
        .done()
    )
    return hash_bytes(material, _AUTH_DOMAIN)


@dataclass(frozen=True)
class WithdrawalWitness:
    """The private inputs of a BTR/CSW proof."""

    utxo: Utxo
    #: Merkle path from the UTXO to the certificate-committed MST root.
    mst_proof: FieldMerkleProof
    #: The MST root committed by the anchoring certificate's proofdata.
    committed_mst_root: int
    #: The MC block that carried the anchoring certificate (``Bw``).
    anchor_block: MainchainBlock
    #: The anchoring certificate itself (must be inside ``anchor_block``).
    anchor_cert: WithdrawalCertificate
    owner_pubkey: PublicKey
    signature: Signature
    receiver: bytes
    ledger_id: bytes


class _WithdrawalCircuitBase(Circuit):
    """Shared synthesis for the BTR and CSW statements."""

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: WithdrawalWitness,
    ) -> None:
        h_bw, nullifier, receiver_fe, amount, mh_proofdata = public_input
        h_bw_wire = builder.alloc_public(h_bw)
        nullifier_wire = builder.alloc_public(nullifier)
        receiver_wire = builder.alloc_public(receiver_fe)
        amount_wire = builder.alloc_public(amount)

        utxo = witness.utxo

        # --- amount equality + range (in-circuit).
        builder.enforce_range(amount_wire, AMOUNT_BITS, "withdrawal/amount-range")
        utxo_amount = builder.alloc(utxo.amount)
        builder.enforce_equal(amount_wire, utxo_amount, "withdrawal/amount")

        # --- nullifier = MiMC(utxo) = the MST leaf value (in-circuit).
        addr_wire = builder.alloc(utxo.addr)
        nonce_wire = builder.alloc(utxo.nonce)
        leaf = mimc_hash_gadget(builder, [addr_wire, utxo_amount, nonce_wire])
        builder.enforce_equal(leaf, nullifier_wire, "withdrawal/nullifier")

        # --- MST membership against the committed root (in-circuit).
        root_wire = builder.alloc(witness.committed_mst_root)
        builder.assert_native(
            witness.mst_proof.position == utxo.position(witness.mst_proof.depth),
            "withdrawal: proof position does not match MST_Position(utxo)",
        )
        enforce_merkle_membership(builder, witness.mst_proof, root_wire, leaf=leaf)

        # --- anchoring: the root is the one committed by the certificate in
        # block Bw (structural native checks over the witness's MC data).
        builder.assert_native(
            element_from_bytes(witness.anchor_block.hash) == h_bw_wire.value,
            "withdrawal: anchor block does not match H(Bw)",
        )
        builder.assert_native(
            any(
                isinstance(tx, CertificateTx) and tx.wcert.id == witness.anchor_cert.id
                for tx in witness.anchor_block.transactions
            ),
            "withdrawal: anchoring certificate not in the anchor block",
        )
        builder.assert_native(
            witness.anchor_cert.ledger_id == witness.ledger_id,
            "withdrawal: anchoring certificate is for a different sidechain",
        )
        builder.assert_native(
            len(witness.anchor_cert.proofdata) == 3
            and witness.anchor_cert.proofdata[1] == witness.committed_mst_root,
            "withdrawal: certificate does not commit to the claimed MST root",
        )

        # --- ownership (native: signature + address binding).
        builder.assert_native(
            address_to_field(address_of(witness.owner_pubkey)) == utxo.addr,
            "withdrawal: pubkey does not own the utxo",
        )
        message = withdrawal_auth_message(
            witness.ledger_id, utxo, witness.receiver
        )
        builder.assert_native(
            witness.owner_pubkey.verify(message, witness.signature),
            "withdrawal: bad authorization signature",
        )

        # --- receiver binding (the MC hashes the raw receiver into sysdata).
        builder.assert_native(
            element_from_bytes(hash_bytes(witness.receiver, b"zendoo/receiver"))
            == receiver_wire.value,
            "withdrawal: receiver binding mismatch",
        )

        # --- proofdata binding: Latus BTR/CSW proofdata is the utxo triple;
        # recompute MH(proofdata) in-circuit.
        recomputed = mimc_hash_gadget(builder, [addr_wire, utxo_amount, nonce_wire])
        mh_wire = builder.alloc_public(mh_proofdata)
        builder.enforce_equal(recomputed, mh_wire, "withdrawal/mh-proofdata")


class LatusBtrCircuit(_WithdrawalCircuitBase):
    """The backward-transfer-request statement (§5.5.3.2)."""

    circuit_id = "latus/btr-v1"


class LatusCswCircuit(_WithdrawalCircuitBase):
    """The ceased-sidechain-withdrawal statement (§5.5.3.3)."""

    circuit_id = "latus/csw-v1"


def sign_withdrawal(
    ledger_id: bytes, utxo: Utxo, receiver: bytes, owner: KeyPair
) -> Signature:
    """Authorize a BTR/CSW for ``utxo`` paying ``receiver`` on the MC."""
    return owner.sign(withdrawal_auth_message(ledger_id, utxo, receiver))
