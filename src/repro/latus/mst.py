"""The Merkle State Tree (paper §5.2, Fig. 9).

A fixed-depth field-element Merkle tree whose leaves are UTXO slots.  The
slot of a UTXO is ``MST_Position(utxo)`` — a pure function of the UTXO's
nonce — so adding an output whose slot is already occupied is a *collision*:
the paper's canonical reason for a forward transfer to fail (§5.3.2).

The tree also records which positions were touched since the last epoch
reset; that set is the source of the ``mst_delta`` bit vector (Appendix A).
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.fixed_merkle import EMPTY_LEAF, FieldMerkleProof, FixedMerkleTree
from repro.errors import MstError
from repro.latus.utxo import Utxo


class MerkleStateTree:
    """The Latus UTXO commitment: a sparse fixed-depth MiMC Merkle tree."""

    def __init__(self, depth: int, node_store=None) -> None:
        self.depth = depth
        # node_store picks the tree's storage policy (repro.storage.pages):
        # None = the in-memory dict store, PagedNodeStore = bounded cache.
        self._tree = FixedMerkleTree(depth, node_store=node_store)
        self._touched: set[int] = set()
        # Write-ahead journal hook: called with the validated {position:
        # leaf} update dict *before* the tree mutates (durability layer).
        self._journal = None

    # -- queries -----------------------------------------------------------------

    @property
    def root(self) -> int:
        """The current ``mst`` root hash."""
        return self._tree.root

    @property
    def capacity(self) -> int:
        """Number of UTXO slots."""
        return self._tree.capacity

    @property
    def occupied_count(self) -> int:
        """Number of occupied slots."""
        return self._tree.occupied_count

    def position_of(self, utxo: Utxo) -> int:
        """``MST_Position(utxo)`` for this tree's depth."""
        return utxo.position(self.depth)

    def contains(self, utxo: Utxo) -> bool:
        """True when exactly this UTXO occupies its slot."""
        return self._tree.get_leaf(self.position_of(utxo)) == utxo.leaf_value

    def slot_occupied(self, position: int) -> bool:
        """True when the slot holds any UTXO."""
        return self._tree.is_occupied(position)

    def can_add(self, utxo: Utxo) -> bool:
        """True when the UTXO's slot is currently empty."""
        return not self.slot_occupied(self.position_of(utxo))

    # -- mutation -----------------------------------------------------------------

    def add(self, utxo: Utxo) -> int:
        """Occupy the UTXO's slot; raises :class:`MstError` on collision.

        Returns the position written.
        """
        position = self.position_of(utxo)
        if self._tree.is_occupied(position):
            raise MstError(f"MST slot {position} is already occupied (collision)")
        self._tree.set_leaf(position, utxo.leaf_value)
        self._touched.add(position)
        return position

    def remove(self, utxo: Utxo) -> int:
        """Free the UTXO's slot; raises when the slot does not hold it.

        Returns the position cleared.
        """
        position = self.position_of(utxo)
        if self._tree.get_leaf(position) != utxo.leaf_value:
            raise MstError(
                f"MST slot {position} does not contain the claimed utxo"
            )
        self._tree.set_leaf(position, EMPTY_LEAF)
        self._touched.add(position)
        return position

    def apply_batch(
        self, add: Iterable[Utxo] = (), remove: Iterable[Utxo] = ()
    ) -> tuple[list[int], list[int]]:
        """Apply removals then additions as one batched Merkle update.

        Equivalent to calling :meth:`remove` for every UTXO in ``remove``
        followed by :meth:`add` for every UTXO in ``add`` (an addition may
        reuse a slot freed in the same batch), but the tree rehashes each
        distinct dirty ancestor exactly once instead of once per UTXO.
        Validates the whole batch before mutating anything: on
        :class:`MstError` the state is unchanged.

        Returns ``(removed_positions, added_positions)``.
        """
        updates: dict[int, int] = {}
        removed_positions: list[int] = []
        freed: set[int] = set()
        for utxo in remove:
            position = self.position_of(utxo)
            if position in freed:
                raise MstError(f"batch removes MST slot {position} twice")
            if self._tree.get_leaf(position) != utxo.leaf_value:
                raise MstError(
                    f"MST slot {position} does not contain the claimed utxo"
                )
            freed.add(position)
            updates[position] = EMPTY_LEAF
            removed_positions.append(position)
        added_positions: list[int] = []
        planned: set[int] = set()
        for utxo in add:
            position = self.position_of(utxo)
            occupied = self._tree.is_occupied(position) and position not in freed
            if occupied or position in planned:
                raise MstError(
                    f"MST slot {position} is already occupied (collision)"
                )
            planned.add(position)
            updates[position] = utxo.leaf_value
            added_positions.append(position)
        if self._journal is not None and updates:
            self._journal(updates)
        self._tree.set_leaves(updates)
        self._touched.update(updates)
        return removed_positions, added_positions

    def apply_leaf_batch(self, updates: dict[int, int]) -> None:
        """Write raw ``{position: leaf}`` updates (trusted WAL replay path).

        Skips both validation and the journal: the updates were validated
        when first applied and are being replayed from the store.
        """
        if updates:
            self._tree.set_leaves(updates)
            self._touched.update(updates)

    def add_batch(self, utxos: Iterable[Utxo]) -> list[int]:
        """Occupy every UTXO's slot in one batched update (see apply_batch)."""
        _, added = self.apply_batch(add=utxos)
        return added

    # -- proofs ------------------------------------------------------------------

    def prove(self, utxo: Utxo) -> FieldMerkleProof:
        """Membership proof for a contained UTXO."""
        if not self.contains(utxo):
            raise MstError("cannot prove membership of an absent utxo")
        return self._tree.prove(self.position_of(utxo))

    def prove_position(self, position: int) -> FieldMerkleProof:
        """Opening of an arbitrary slot (used for non-membership)."""
        return self._tree.prove(position)

    # -- node store ----------------------------------------------------------------

    @property
    def node_store(self):
        """The tree's backing node store (inspection/persistence)."""
        return self._tree.node_store

    def describe_store(self) -> dict:
        """The node store's ``describe()`` dict (cache occupancy etc.)."""
        return self._tree.node_store.describe()

    # -- write-ahead journal --------------------------------------------------------

    def attach_journal(self, journal) -> None:
        """Install a write-ahead hook: ``journal(updates)`` runs with the
        validated ``{position: leaf}`` dict before each batched mutation."""
        self._journal = journal

    def detach_journal(self) -> None:
        self._journal = None

    # -- delta tracking ------------------------------------------------------------

    @property
    def touched_positions(self) -> frozenset[int]:
        """Slots modified since the last :meth:`reset_touched`."""
        return frozenset(self._touched)

    def reset_touched(self) -> None:
        """Start a fresh modification-tracking window (new withdrawal epoch)."""
        self._touched.clear()

    # -- snapshotting ----------------------------------------------------------------

    def copy(self) -> "MerkleStateTree":
        """Independent snapshot including the touched set.

        The journal hook is deliberately *not* inherited: copies are
        scratch state (epoch re-proving, rollback snapshots) and must not
        write ahead to the durable log.
        """
        clone = MerkleStateTree(self.depth)
        clone._tree = self._tree.copy()
        clone._touched = set(self._touched)
        return clone

    @classmethod
    def adopt(cls, tree: FixedMerkleTree) -> "MerkleStateTree":
        """Wrap an already-built tree (snapshot recovery)."""
        mst = cls.__new__(cls)
        mst.depth = tree.depth
        mst._tree = tree
        mst._touched = set()
        mst._journal = None
        return mst
