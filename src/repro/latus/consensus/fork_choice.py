"""Sidechain fork choice (paper §5.1).

"The chain resolution algorithm is altered to enforce that the sidechain
follows the longest mainchain branch": between two candidate sidechain
chains, prefer the one whose last mainchain reference carries more
cumulative MC work; only among chains referencing the same MC branch does
sidechain length decide; block hash breaks residual ties deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.latus.block import SidechainBlock


@dataclass(frozen=True)
class ChainCandidate:
    """A candidate sidechain branch with the MC work its tip references."""

    blocks: tuple[SidechainBlock, ...]
    referenced_mc_work: int

    @property
    def height(self) -> int:
        return len(self.blocks) - 1

    @property
    def tip_hash(self) -> bytes:
        return self.blocks[-1].hash if self.blocks else b"\x00" * 32


def compare_candidates(a: ChainCandidate, b: ChainCandidate) -> int:
    """Three-level comparison: MC work, then SC height, then tip hash.

    Returns negative when ``a`` loses, positive when ``a`` wins, never 0 for
    distinct non-empty chains (the hash tie-break is total).
    """
    if a.referenced_mc_work != b.referenced_mc_work:
        return -1 if a.referenced_mc_work < b.referenced_mc_work else 1
    if a.height != b.height:
        return -1 if a.height < b.height else 1
    if a.tip_hash == b.tip_hash:
        return 0
    return -1 if a.tip_hash < b.tip_hash else 1


def select_best(candidates: Sequence[ChainCandidate]) -> ChainCandidate:
    """The winning branch among ``candidates``."""
    if not candidates:
        raise ValueError("no candidates to choose from")
    best = candidates[0]
    for candidate in candidates[1:]:
        if compare_candidates(candidate, best) > 0:
            best = candidate
    return best
