"""Stake distributions for slot-leader selection (paper §5.1).

The stake distribution of a consensus epoch is a snapshot of coin ownership
fixed *before* the epoch begins.  Latus has no native asset: stake is the
Coin balance held in the sidechain's UTXO set, aggregated per owner address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConsensusError
from repro.latus.utxo import Utxo


@dataclass(frozen=True)
class StakeDistribution:
    """An immutable snapshot: owner address (field element) -> total stake."""

    stakes: tuple[tuple[int, int], ...]  # sorted (addr, amount) pairs

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int]) -> "StakeDistribution":
        """Build from an address -> amount mapping, dropping zero entries."""
        pairs = tuple(sorted((a, s) for a, s in mapping.items() if s > 0))
        return cls(stakes=pairs)

    @classmethod
    def from_utxos(cls, utxos: Iterable[Utxo]) -> "StakeDistribution":
        """Aggregate a UTXO population by owner."""
        totals: dict[int, int] = {}
        for utxo in utxos:
            totals[utxo.addr] = totals.get(utxo.addr, 0) + utxo.amount
        return cls.from_mapping(totals)

    @property
    def total(self) -> int:
        """Total stake in the snapshot."""
        return sum(amount for _, amount in self.stakes)

    @property
    def is_empty(self) -> bool:
        """True when nobody holds stake (bootstrap situation)."""
        return not self.stakes

    def stake_of(self, addr: int) -> int:
        """Stake of one address (0 when absent)."""
        for a, s in self.stakes:
            if a == addr:
                return s
        return 0

    def owner_at(self, point: int) -> int:
        """The address owning the stake unit at ``point ∈ [0, total)``.

        Addresses own contiguous ranges in sorted order, so a uniformly
        random point selects an address with probability proportional to its
        stake — the core of the leader lottery.
        """
        if self.is_empty:
            raise ConsensusError("cannot sample an empty stake distribution")
        if not 0 <= point < self.total:
            raise ConsensusError(f"sample point {point} out of range")
        cumulative = 0
        for addr, amount in self.stakes:
            cumulative += amount
            if point < cumulative:
                return addr
        raise AssertionError("unreachable: point below total but not matched")
