"""Latus consensus: Ouroboros-style slots, stake snapshots, fork choice."""

from repro.latus.consensus.fork_choice import (
    ChainCandidate,
    compare_candidates,
    select_best,
)
from repro.latus.consensus.ouroboros import (
    LeaderSchedule,
    SlotPosition,
    genesis_seed,
    next_epoch_seed,
    slot_leader,
)
from repro.latus.consensus.stake import StakeDistribution

__all__ = [
    "ChainCandidate",
    "LeaderSchedule",
    "SlotPosition",
    "StakeDistribution",
    "compare_candidates",
    "genesis_seed",
    "next_epoch_seed",
    "select_best",
    "slot_leader",
]
