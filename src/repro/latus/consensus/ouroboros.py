"""Ouroboros-style slot-leader selection (paper §5.1, Fig. 5).

SUBSTITUTION (DESIGN.md §4): full Ouroboros derives epoch randomness from a
multi-party coin-tossing protocol; we derive it by hashing the previous
epoch's seed — a deterministic VRF stand-in that is revealed "after the
stake distribution is fixed" in the same scheduling sense.  The slot/epoch
structure, stake-weighted selection and skipped-slot behaviour are the parts
the CCTP interacts with, and those are faithfully implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import hash_bytes
from repro.encoding import Encoder
from repro.errors import ConsensusError
from repro.latus.consensus.stake import StakeDistribution

_SEED_DOMAIN = b"latus/epoch-seed"
_LOTTERY_DOMAIN = b"latus/slot-lottery"


def genesis_seed(ledger_id: bytes) -> bytes:
    """The consensus-epoch-0 randomness, fixed by the sidechain identity."""
    return hash_bytes(ledger_id, _SEED_DOMAIN)


def next_epoch_seed(previous_seed: bytes, epoch: int) -> bytes:
    """Evolve the epoch randomness (revealed once stake is fixed)."""
    material = Encoder().raw(previous_seed).u64(epoch).done()
    return hash_bytes(material, _SEED_DOMAIN)


def slot_leader(
    seed: bytes, absolute_slot: int, distribution: StakeDistribution
) -> int | None:
    """The paper's ``Select(SD, rand)`` for one slot.

    Returns the leader's address (field element), or None when the stake
    distribution is empty (the bootstrap case — callers fall back to the
    sidechain creator, see :class:`LeaderSchedule`).
    """
    if distribution.is_empty:
        return None
    material = Encoder().raw(seed).u64(absolute_slot).done()
    digest = hash_bytes(material, _LOTTERY_DOMAIN)
    point = int.from_bytes(digest, "little") % distribution.total
    return distribution.owner_at(point)


@dataclass(frozen=True)
class SlotPosition:
    """An absolute slot number with its (epoch, index) decomposition."""

    absolute: int
    epoch: int
    index: int

    @classmethod
    def from_absolute(cls, absolute: int, slots_per_epoch: int) -> "SlotPosition":
        if absolute < 0:
            raise ConsensusError("slot numbers are non-negative")
        return cls(
            absolute=absolute,
            epoch=absolute // slots_per_epoch,
            index=absolute % slots_per_epoch,
        )


class LeaderSchedule:
    """The full leader assignment of one consensus epoch (Fig. 5).

    The stake distribution is the snapshot taken at the end of the previous
    epoch; when it is empty every slot falls back to ``bootstrap_leader``
    (the sidechain creator) so the chain can start before any forward
    transfer has landed.
    """

    def __init__(
        self,
        epoch: int,
        seed: bytes,
        distribution: StakeDistribution,
        slots_per_epoch: int,
        bootstrap_leader: int,
    ) -> None:
        self.epoch = epoch
        self.seed = seed
        self.distribution = distribution
        self.slots_per_epoch = slots_per_epoch
        self.bootstrap_leader = bootstrap_leader

    def leader_of(self, slot_index: int) -> int:
        """The leader address of slot ``slot_index`` within this epoch."""
        if not 0 <= slot_index < self.slots_per_epoch:
            raise ConsensusError(f"slot index {slot_index} out of epoch range")
        absolute = self.epoch * self.slots_per_epoch + slot_index
        leader = slot_leader(self.seed, absolute, self.distribution)
        return leader if leader is not None else self.bootstrap_leader

    def leaders(self) -> list[int]:
        """All leaders of the epoch, slot order."""
        return [self.leader_of(i) for i in range(self.slots_per_epoch)]

    def is_leader(self, addr: int, slot_index: int) -> bool:
        """True when ``addr`` may forge at ``slot_index``."""
        return self.leader_of(slot_index) == addr
