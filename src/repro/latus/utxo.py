"""Latus unspent transaction outputs (paper §5.2).

A sidechain UTXO is the tuple ``(addr, amount, nonce)``.  All three
components are field elements so the UTXO is hashable inside SNARK circuits:

* ``addr`` — the owner address mapped into the field (the MiMC image of the
  Schnorr address bytes);
* ``amount`` — a 64-bit coin amount;
* ``nonce`` — a unique field element fixing the UTXO's identity *and* its
  MST slot: ``MST_Position(utxo)`` is a deterministic function of the nonce
  alone, independent of the tree state (Fig. 9).

The *nullifier* of a UTXO — the double-spend tag used by BTR/CSW (Def. 4.5)
— is its leaf value, i.e. "the hash of the utxo" exactly as §5.5.3.2
prescribes, so it is provable in-circuit with the MiMC gadget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.field import element_from_bytes, element_to_bytes
from repro.crypto.hashing import hash_bytes
from repro.crypto.mimc import mimc_hash
from repro.encoding import Encoder
from repro.errors import LatusError

#: Domain-separation tag mixed into nonce derivations.
_NONCE_DOMAIN = b"latus/nonce"


def address_to_field(address: bytes) -> int:
    """Map a 32-byte mainchain-style address into the field."""
    return element_from_bytes(address)


@dataclass(frozen=True)
class Utxo:
    """An unspent output: ``(addr, amount, nonce)`` as field elements."""

    addr: int
    amount: int
    nonce: int

    def __post_init__(self) -> None:
        if self.amount < 0 or self.amount >= 1 << 64:
            raise LatusError("utxo amount must be a 64-bit unsigned integer")

    @cached_property
    def leaf_value(self) -> int:
        """The MST leaf value: ``MiMC(addr, amount, nonce)``."""
        return mimc_hash((self.addr, self.amount, self.nonce))

    def position(self, depth: int) -> int:
        """``MST_Position``: the slot index, a pure function of the nonce."""
        return mimc_hash((self.nonce,)) % (1 << depth)

    @property
    def nullifier(self) -> bytes:
        """The 32-byte double-spend tag (the leaf value, serialized)."""
        return element_to_bytes(self.leaf_value)

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return (
            Encoder()
            .field_element(self.addr)
            .u64(self.amount)
            .field_element(self.nonce)
            .done()
        )

    def as_field_elements(self) -> tuple[int, int, int]:
        """The circuit-facing representation."""
        return (self.addr, self.amount, self.nonce)


def derive_nonce(*parts: bytes) -> int:
    """Derive a unique nonce field element from identifying byte strings.

    Used as ``derive_nonce(txid, index_bytes)`` for transaction outputs and
    ``derive_nonce(ft.id)`` for outputs minted by forward transfers.
    """
    material = Encoder()
    for part in parts:
        material.var_bytes(part)
    return element_from_bytes(hash_bytes(material.done(), _NONCE_DOMAIN))
