"""Distributed proof generation with incentives (paper §5.4.1).

The paper flags proving as too heavy for forgers alone and sketches the
mitigation: "a special dispatching scheme that assigns generation of proofs
randomly to interested parties who then do these tasks in parallel and
submit generated proofs ... An incentive scheme provides a reward for each
valid submission."  This module implements that sketch:

* a :class:`ProofDispatcher` deterministically (seed-based) assigns each
  base transition of an epoch to a registered worker;
* workers prove their assignments independently (simulated wall-clock is
  tracked per worker, so the parallel speedup is measurable);
* the dispatcher validates every submission — an invalid or missing proof
  is reassigned and the offending worker forfeits the reward;
* merge levels are likewise distributed, level by level;
* rewards accrue per *valid* submission and are paid as an itemized
  :class:`RewardStatement`.

Everything is deterministic: assignment comes from hashing the epoch seed
with the task index, which is the randomness stand-in used throughout the
reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.hashing import hash_bytes
from repro.encoding import Encoder
from repro.errors import SnarkError
from repro.latus.proofs import LatusTransitionSystem
from repro.latus.state import LatusState
from repro.latus.transactions import LatusTransaction
from repro.snark.recursive import RecursiveComposer, TransitionProof


@dataclass
class ProofWorker:
    """One proving participant: an identity plus its work accounting."""

    name: str
    #: Simulated misbehaviour: fraction denominator; every ``fail_every``-th
    #: task this worker is assigned, it returns garbage (0 = always honest).
    fail_every: int = 0
    proofs_produced: int = 0
    proofs_rejected: int = 0
    busy_seconds: float = 0.0
    _task_counter: int = field(default=0, repr=False)

    def should_fail(self) -> bool:
        self._task_counter += 1
        return self.fail_every > 0 and self._task_counter % self.fail_every == 0


@dataclass(frozen=True)
class RewardStatement:
    """The itemized payout of one dispatched epoch."""

    per_proof_reward: int
    rewards: dict[str, int]
    rejected: dict[str, int]

    @property
    def total_paid(self) -> int:
        return sum(self.rewards.values())


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of distributed epoch proving."""

    proof: TransitionProof
    final_state: LatusState
    statement: RewardStatement
    base_tasks: int
    merge_tasks: int
    #: Wall-clock if all work ran sequentially.
    sequential_seconds: float
    #: Wall-clock with perfect parallelism: max busy time per level, summed.
    parallel_seconds: float

    @property
    def speedup(self) -> float:
        """The §5.4.1 payoff: sequential / parallel time."""
        if self.parallel_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.parallel_seconds


class ProofDispatcher:
    """Assigns, validates and rewards distributed proof generation."""

    def __init__(
        self,
        workers: list[ProofWorker],
        seed: bytes = b"proof-market",
        per_proof_reward: int = 10,
    ) -> None:
        if not workers:
            raise SnarkError("at least one worker is required")
        honest = [w for w in workers if w.fail_every != 1]
        if not honest:
            raise SnarkError("at least one worker must be capable of honesty")
        self.workers = workers
        self.seed = seed
        self.per_proof_reward = per_proof_reward
        self.composer = RecursiveComposer(LatusTransitionSystem())
        #: Every attempt as ``(level, index, attempt, worker, accepted)`` —
        #: the audit trail the exclusion regression test checks.
        self.task_log: list[tuple[int, int, int, str, bool]] = []

    # -- assignment ---------------------------------------------------------------

    def _assign(
        self, level: int, index: int, attempt: int, excluded: set[str] | None = None
    ) -> ProofWorker:
        """The worker for a task attempt, skipping the task's prior rejectors.

        ``excluded`` holds the names of workers that already failed this
        task: a retry must never hand the task back to its own rejector,
        or a ``fail_every > 1`` worker farms rewards on its own retries.
        When every worker has rejected the task the exclusion resets (the
        retry loop, not assignment, decides when to give up).  On attempt 0
        the exclusion set is empty, so first assignments are unchanged.
        """
        eligible = (
            [w for w in self.workers if w.name not in excluded]
            if excluded
            else self.workers
        )
        if not eligible:
            eligible = self.workers
        material = (
            Encoder().raw(self.seed).u32(level).u32(index).u32(attempt).done()
        )
        digest = hash_bytes(material, b"proof-market/assign")
        return eligible[int.from_bytes(digest[:4], "little") % len(eligible)]

    # -- proving ---------------------------------------------------------------------

    def prove_epoch(
        self, start_state: LatusState, transitions: list[LatusTransaction]
    ) -> DispatchResult:
        """Distribute the epoch's proof tree across the worker pool.

        Raises :class:`SnarkError` if the epoch cannot be proven at all
        (e.g. an invalid transition) — worker misbehaviour alone never
        fails the epoch, it only reassigns tasks.
        """
        if not transitions:
            raise SnarkError("empty epochs are proven by the heartbeat path")
        rewards = {w.name: 0 for w in self.workers}
        rejected = {w.name: 0 for w in self.workers}
        sequential = 0.0
        parallel = 0.0
        merge_tasks = 0

        # --- level 0: base proofs, one per transition, in parallel
        level_busy: dict[str, float] = {}
        proofs: list[TransitionProof] = []
        state = start_state
        for index, transition in enumerate(transitions):
            proof, state, elapsed = self._run_base_task(
                0, index, state, transition, rewards, rejected
            )
            proofs.append(proof)
            sequential += elapsed[0]
            # only the honest completion occupies the worker's parallel lane
            for name, seconds in elapsed[1].items():
                level_busy[name] = level_busy.get(name, 0.0) + seconds
        parallel += max(level_busy.values(), default=0.0)

        # --- merge levels, pairwise, each level in parallel
        level = 1
        while len(proofs) > 1:
            level_busy = {}
            next_proofs = []
            for index in range(0, len(proofs) - 1, 2):
                merged, elapsed = self._run_merge_task(
                    level,
                    index // 2,
                    proofs[index],
                    proofs[index + 1],
                    rewards,
                    rejected,
                )
                next_proofs.append(merged)
                merge_tasks += 1
                sequential += elapsed[0]
                for name, seconds in elapsed[1].items():
                    level_busy[name] = level_busy.get(name, 0.0) + seconds
            if len(proofs) % 2 == 1:
                next_proofs.append(proofs[-1])
            parallel += max(level_busy.values(), default=0.0)
            proofs = next_proofs
            level += 1

        statement = RewardStatement(
            per_proof_reward=self.per_proof_reward,
            rewards=rewards,
            rejected=rejected,
        )
        return DispatchResult(
            proof=proofs[0],
            final_state=state,
            statement=statement,
            base_tasks=len(transitions),
            merge_tasks=merge_tasks,
            sequential_seconds=sequential,
            parallel_seconds=parallel,
        )

    # -- task execution ------------------------------------------------------------------

    def _run_base_task(self, level, index, state, transition, rewards, rejected):
        total = 0.0
        per_worker: dict[str, float] = {}
        excluded: set[str] = set()
        for attempt in range(4 * len(self.workers)):
            worker = self._assign(level, index, attempt, excluded)
            started = time.perf_counter()
            if worker.should_fail():
                # a lazy/malicious worker ships garbage: one flipped byte
                candidate = None
            else:
                candidate, next_state = self.composer.prove_base(state, transition)
            elapsed = time.perf_counter() - started
            total += elapsed
            per_worker[worker.name] = per_worker.get(worker.name, 0.0) + elapsed
            worker.busy_seconds += elapsed
            accepted = candidate is not None and self.composer.verify(candidate)
            self.task_log.append((level, index, attempt, worker.name, accepted))
            if accepted:
                worker.proofs_produced += 1
                rewards[worker.name] += self.per_proof_reward
                return candidate, next_state, (total, per_worker)
            worker.proofs_rejected += 1
            rejected[worker.name] += 1
            excluded.add(worker.name)
            if len(excluded) >= len(self.workers):
                excluded.clear()
        raise SnarkError(f"no worker produced a valid base proof for task {index}")

    def _run_merge_task(self, level, index, left, right, rewards, rejected):
        total = 0.0
        per_worker: dict[str, float] = {}
        excluded: set[str] = set()
        for attempt in range(4 * len(self.workers)):
            worker = self._assign(level, index, attempt, excluded)
            started = time.perf_counter()
            if worker.should_fail():
                candidate = None
            else:
                candidate = self.composer.merge(left, right)
            elapsed = time.perf_counter() - started
            total += elapsed
            per_worker[worker.name] = per_worker.get(worker.name, 0.0) + elapsed
            worker.busy_seconds += elapsed
            accepted = candidate is not None and self.composer.verify(candidate)
            self.task_log.append((level, index, attempt, worker.name, accepted))
            if accepted:
                worker.proofs_produced += 1
                rewards[worker.name] += self.per_proof_reward
                return candidate, (total, per_worker)
            worker.proofs_rejected += 1
            rejected[worker.name] += 1
            excluded.add(worker.name)
            if len(excluded) >= len(self.workers):
                excluded.clear()
        raise SnarkError(f"no worker produced a valid merge proof at level {level}")
