"""The Latus full node (paper §5).

A Latus node directly observes a mainchain node (the parent-child
relationship of §1: "sidechain nodes directly observe the mainchain while
mainchain nodes only observe cryptographically authenticated certificates").
Its responsibilities:

* **Sync** — follow the MC active chain; on an MC reorg, deterministically
  rebuild the sidechain so blocks referencing orphaned MC blocks are
  reverted (§5.1's fork-resolution property);
* **Forge** — one slot per observed MC block; when a controlled key wins
  the slot lottery, forge a block embedding the pending MC references
  (contiguous, cut at withdrawal-epoch boundaries) and pending transactions;
* **Certify** — when the block referencing a withdrawal epoch's last MC
  block is forged, build the recursive epoch proof, produce the withdrawal
  certificate and submit it to the MC mempool;
* **Track** — maintain the UTXO index (full outputs, not just MST leaves),
  per-consensus-epoch stake snapshots and the certificate history that
  anchors BTR/CSW proofs.

The slot clock is driven by MC blocks: slot ``k`` corresponds to MC height
``start_block + k``.  This pins the synchronous-slot assumption of
Ouroboros to the observable MC timeline and keeps the whole construction
deterministic, which is also what makes reorg recovery a pure replay.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro import observability, wire
from repro.core.bootstrap import SidechainConfig
from repro.core.transfers import WithdrawalCertificate
from repro.crypto.keys import KeyPair, address_of
from repro.errors import (
    ConsensusError,
    DecodeError,
    ForgingError,
    StateTransitionError,
    StorageError,
    UnknownBlock,
    ZendooError,
)
from repro.lifecycle import NodeLifecycle, resolve_store_kwarg
from repro.latus.block import SidechainBlock, forge_block
from repro.latus.consensus.ouroboros import (
    LeaderSchedule,
    genesis_seed,
    next_epoch_seed,
)
from repro.latus.consensus.stake import StakeDistribution
from repro.latus.mc_ref import MCBlockReference, build_mc_ref, verify_mc_ref
from repro.latus.mst_delta import MstDelta
from repro.latus.params import LatusParams
from repro.latus.proofs import EpochProver
from repro.latus.state import LatusState
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    LatusTransaction,
    PaymentTx,
)
from repro.latus.utxo import Utxo, address_to_field
from repro.latus.wcert import WCertWitness, WithdrawalCertificateBuilder
from repro.snark.recursive import CompositionStats
from repro.mainchain.block import Block as MainchainBlock
from repro.mainchain.node import MainchainNode
from repro.mainchain.transaction import CertificateTx
from repro.storage import (
    SC_BLOCK,
    SC_CERT,
    SC_LEAF_BATCH,
    SC_TX,
    FileStore,
    StateStore,
    count_disk_recovery,
    decode_leaf_batch,
    encode_leaf_batch,
)
from repro.storage import codec as storage_codec
from repro.storage.pages import (
    DEFAULT_CACHE_PAGES,
    DEFAULT_PAGE_SIZE,
    PAGE_SEGMENT_NAME,
    FilePageBacking,
    MemoryPageBacking,
    PagedNodeStore,
)

_REGISTRY = observability.registry()
_BLOCKS_FORGED = _REGISTRY.counter(
    "repro_latus_blocks_forged_total",
    "sidechain blocks forged locally",
).labels()
_BLOCKS_RECEIVED = _REGISTRY.counter(
    "repro_latus_blocks_received_total",
    "foreign sidechain blocks validated and applied",
).labels()
_CERTIFICATES_BUILT = _REGISTRY.counter(
    "repro_latus_certificates_built_total",
    "withdrawal certificates built at epoch close",
).labels()
# Node lifecycle counters (repro_node_crashes_total and friends) live in
# repro.lifecycle and are shared with MainchainNode.


@dataclass
class EpochLedger:
    """Book-keeping for the withdrawal epoch currently in progress."""

    epoch_id: int
    start_state: LatusState
    transitions: list[LatusTransaction] = field(default_factory=list)
    referenced_mc_hashes: list[bytes] = field(default_factory=list)

    def copy(self) -> "EpochLedger":
        return EpochLedger(
            epoch_id=self.epoch_id,
            start_state=self.start_state.copy(),
            transitions=list(self.transitions),
            referenced_mc_hashes=list(self.referenced_mc_hashes),
        )


@dataclass
class _NodeSnapshot:
    """Rollback point captured after each applied sidechain block.

    Enables §5.1's fork resolution: on an MC reorg only the SC blocks
    referencing orphaned MC blocks are reverted — everything below the fork
    point is restored from the snapshot, preserving history (and therefore
    agreement with certificates the MC already adopted).
    """

    state: LatusState
    utxo_index: dict[int, "Utxo"]
    epoch: EpochLedger
    last_referenced_mc_height: int
    included_txids: set[bytes]
    certificates_len: int
    epoch_seeds: dict[int, bytes]
    epoch_stakes: dict[int, object]


@dataclass(frozen=True)
class CertificateAnchor:
    """Where a submitted certificate landed — the BTR/CSW anchor data."""

    certificate: WithdrawalCertificate
    #: MST root committed by the certificate.
    mst_root: int
    #: Snapshot of the committed state's tree (for membership proofs).
    state_snapshot: LatusState
    mst_delta: MstDelta


class LatusNode(NodeLifecycle):
    """A Latus sidechain full node bound to one mainchain node."""

    _SYNC_RETRYABLE = (ConsensusError, UnknownBlock)
    _SYNC_ERROR = ConsensusError

    def __init__(
        self,
        config: SidechainConfig,
        params: LatusParams,
        mc_node: MainchainNode,
        creator: KeyPair,
        forger_keys: list[KeyPair] | None = None,
        proving_strategy: str = "per_transaction",
        auto_submit_certificates: bool = True,
        proving_workers: int | None = None,
        store: StateStore | None = None,
        data_dir=None,
        fsync: str = "block",
        storage: StateStore | None = None,
        paged_mst: bool = False,
        mst_page_size: int = DEFAULT_PAGE_SIZE,
        mst_cache_pages: int = DEFAULT_CACHE_PAGES,
    ) -> None:
        self.config = config
        self.params = params
        self.mc = mc_node
        self.creator = creator
        self.ledger_id = config.ledger_id
        keys = forger_keys if forger_keys is not None else [creator]
        self.forgers: dict[int, KeyPair] = {
            address_to_field(address_of(k.public)): k for k in keys
        }
        self.prover = EpochProver(proving_strategy, parallel_workers=proving_workers)
        self.cert_builder = WithdrawalCertificateBuilder(self.ledger_id, self.prover)
        self.auto_submit_certificates = auto_submit_certificates
        #: Instrumentation of the most recent epoch proof (pool occupancy,
        #: synthesis/serialization seconds, critical-path depth, ...).
        self.last_epoch_stats: "CompositionStats | None" = None

        #: Every wallet-submitted transaction ever seen (survives rebuilds).
        self.submitted_txs: list[LatusTransaction] = []
        self.certificates: list[WithdrawalCertificate] = []
        self.anchors: dict[int, CertificateAnchor] = {}
        #: The witness behind the most recent certificate (kept for
        #: diagnostics, tests and benchmarks; never sent to the MC).
        self.last_wcert_witness: WCertWitness | None = None

        store = resolve_store_kwarg(store, storage, "LatusNode")
        if data_dir is not None:
            if store is not None:
                raise StorageError("pass data_dir= or store=, not both")
            store = FileStore(data_dir, fsync=fsync)
        self._init_lifecycle(store)
        #: True while replaying the store; suppresses all durable writes.
        self._recovering = False
        #: MST storage policy: paged_mst=True bounds resident memory with a
        #: PagedNodeStore (LRU page cache spilling to pages.seg next to the
        #: WAL when a FileStore is attached, to memory otherwise).
        self._paged_mst = paged_mst
        self._mst_page_size = mst_page_size
        self._mst_cache_pages = mst_cache_pages
        self._page_backing = None

        self._reset_chain_state()
        if self._store is not None:
            try:
                if not self._store.is_empty():
                    self._recover_from_store()
            except StorageError as exc:
                warnings.warn(
                    f"disk recovery failed ({exc}); starting from an empty chain",
                    RuntimeWarning,
                    stacklevel=2,
                )
                self._reset_chain_state()

    # -- chain state (rebuilt wholesale on MC reorgs) ---------------------------------

    def _ensure_page_backing(self):
        """The page backing for the *current* store (re-derived on restart)."""
        if not self._paged_mst:
            return None
        if isinstance(self._store, FileStore):
            path = self._store.data_dir / PAGE_SEGMENT_NAME
            if (
                not isinstance(self._page_backing, FilePageBacking)
                or self._page_backing.path != path
            ):
                if self._page_backing is not None:
                    self._page_backing.close()
                self._page_backing = FilePageBacking(path)
        elif self._page_backing is None:
            self._page_backing = MemoryPageBacking()
        return self._page_backing

    def _make_node_store(self):
        """A fresh node store honoring the configured MST storage policy."""
        if not self._paged_mst:
            return None
        return PagedNodeStore(
            page_size=self._mst_page_size,
            cache_pages=self._mst_cache_pages,
            backing=self._ensure_page_backing(),
        )

    def _reset_chain_state(self) -> None:
        self.state = LatusState(
            self.params.mst_depth, node_store=self._make_node_store()
        )
        self.utxo_index: dict[int, Utxo] = {}
        self.blocks: list[SidechainBlock] = []
        self.block_snapshots: list[_NodeSnapshot] = []
        self.synced_mc: list[tuple[int, bytes]] = []
        self.mc_queue: list[MainchainBlock] = []
        self.last_referenced_mc_height = self.config.start_block - 1
        self.included_txids: set[bytes] = set()
        self.epoch = EpochLedger(epoch_id=0, start_state=self.state.copy())
        self._epoch_seeds: dict[int, bytes] = {0: genesis_seed(self.ledger_id)}
        self._epoch_stakes: dict[int, StakeDistribution] = {
            0: StakeDistribution.from_mapping({})
        }
        self.certificates = []
        self.anchors = {}
        self.skipped_slots: list[int] = []
        self._attach_store_hooks()

    def _attach_store_hooks(self) -> None:
        """Wire the MST's write-ahead journal to the attached store."""
        if self._store is not None:
            self.state.mst.attach_journal(self._journal_leaf_batch)

    # -- public API --------------------------------------------------------------------

    @property
    def height(self) -> int:
        """Sidechain chain height (-1 before the first block)."""
        return len(self.blocks) - 1

    @property
    def tip_hash(self) -> bytes:
        """Hash of the sidechain tip (zeros before the first block)."""
        return self.blocks[-1].hash if self.blocks else b"\x00" * 32

    def close(self) -> None:
        """Release prover-side resources and the attached store, if any."""
        self.prover.close()
        if self._store is not None:
            self._store.close()
        if self._page_backing is not None:
            self._page_backing.close()
            self._page_backing = None

    # -- lifecycle hooks (crash/restart/sync_from live in NodeLifecycle) ----------------

    def _drop_inflight(self) -> None:
        # the un-forged MC reference queue and staged-but-uncommitted WAL
        # records are exactly what a real crash loses
        self.mc_queue = []
        if self._store is not None and not self._store.read_only:
            self._store.discard_staged()

    def _reset_for_restart(self) -> None:
        self._reset_chain_state()

    def _adopt_peer_chain(self, peer: "LatusNode") -> None:
        self._reset_chain_state()
        if self._store is not None:
            self._store.reset()
        self.bootstrap_from(list(peer.blocks))

    def _chain_length(self) -> int:
        return len(self.blocks)

    # -- durability ---------------------------------------------------------------------

    def _journal_leaf_batch(self, updates: dict[int, int]) -> None:
        """MST write-ahead hook: stage the leaf batch before the tree mutates."""
        if self._store is not None and not self._recovering:
            self._store.stage(SC_LEAF_BATCH, encode_leaf_batch(updates))

    def _persist_block(self, block: SidechainBlock) -> None:
        """Commit a block record plus its staged leaf batches with one sync."""
        if self._store is not None and not self._recovering:
            self._store.stage(SC_BLOCK, wire.encode_sidechain_block(block))
            self._store.commit()

    def _state_section(self) -> tuple[str, bytes]:
        """The state snapshot section under the configured storage policy.

        Paged over a file backing: flush the dirty pages into ``pages.seg``,
        fsync it, and persist only the page-table refs — the bytes written
        per epoch are the pages dirtied since the last snapshot, not the
        whole leaf set.  Everything else (dict store, or paged over a
        memory backing whose refs cannot outlive the process) falls back to
        the v1 full-leaf encoding.
        """
        store = self.state.mst.node_store
        if isinstance(store, PagedNodeStore) and isinstance(
            store.backing, FilePageBacking
        ):
            store.flush()
            store.backing.sync()
            return (
                "latus/state_pages",
                storage_codec.encode_latus_state_pages(self.state),
            )
        return ("latus/state", storage_codec.encode_latus_state(self.state))

    def _snapshot_sections(self) -> dict[str, bytes]:
        state_key, state_payload = self._state_section()
        return {
            "latus/meta": storage_codec.encode_latus_meta(
                self.epoch.epoch_id,
                self.last_referenced_mc_height,
                self.skipped_slots,
            ),
            state_key: state_payload,
            "latus/epoch": storage_codec.encode_epoch_ledger(self.epoch),
            "latus/blocks": storage_codec.encode_blob_sequence(
                [wire.encode_sidechain_block(b) for b in self.blocks]
            ),
            "latus/utxos": storage_codec.encode_utxo_index(self.utxo_index),
            "latus/synced_mc": storage_codec.encode_synced_mc(self.synced_mc),
            "latus/consensus": storage_codec.encode_consensus(
                self._epoch_seeds, self._epoch_stakes
            ),
            "latus/certs": storage_codec.encode_blob_sequence(
                [c.encode() for c in self.certificates]
            ),
            "latus/anchors": storage_codec.encode_anchors(self.anchors),
            "latus/submitted": storage_codec.encode_blob_sequence(
                [tx.encode() for tx in self.submitted_txs]
            ),
        }

    def _persist_snapshot(self) -> None:
        """Write a full snapshot (compacting the WAL into it)."""
        if self._store is not None and not self._recovering:
            self._store.write_snapshot(
                self.epoch.epoch_id, self._snapshot_sections()
            )

    def _reset_durable_state(self) -> None:
        """Wipe and re-seed the store after a reorg invalidated its history."""
        if self._store is not None and not self._recovering:
            self._store.reset()
            if self.blocks:
                self._persist_snapshot()

    # -- disk recovery ------------------------------------------------------------------

    def _recover_from_store(self) -> bool:
        """Replay ``snapshot + WAL`` back to the pre-crash chain.

        Returns True when a chain was recovered.  Replay is *trusted*:
        blocks came from this node's own validated history, so signature,
        leadership and derivation checks are skipped and epochs whose
        certificate made it to the log are not re-proven — which is what
        makes disk recovery strictly faster than a full peer resync.  Every
        replayed block's state digest is still checked, so corruption
        cannot slip through; any mismatch raises
        :class:`~repro.errors.StorageError` and the caller falls back to an
        empty chain.
        """
        store = self._store
        snapshot = store.latest_snapshot()
        records = store.records()
        if snapshot is None and not records:
            return False
        self._recovering = True
        try:
            if snapshot is not None:
                self._restore_snapshot(snapshot[1])
            self._replay_wal(records)
        except DecodeError as exc:
            raise StorageError(f"undecodable store record: {exc}") from exc
        finally:
            self._recovering = False
        # one fresh snapshot folds the replayed WAL back in: recovery is
        # idempotent and the node is immediately durable again
        self._persist_snapshot()
        self._resubmit_reverted_certificates()
        count_disk_recovery()
        return True

    def _restore_state_section(self, sections: dict[str, bytes]):
        """Decode whichever state section the snapshot carries.

        A paged section restores *lazily*: only the page-table refs are
        read here, and pages fault back in from ``pages.seg`` as the node
        touches state.  A snapshot written under the other storage policy
        is re-housed into the configured one (leaves re-inserted), so
        flipping ``paged_mst`` across restarts is always safe.
        """
        temp_backing = None
        if "latus/state_pages" in sections:
            backing = self._page_backing
            if not isinstance(backing, FilePageBacking):
                if not isinstance(self._store, FileStore):
                    raise StorageError(
                        "paged state snapshot requires a file store to resolve pages"
                    )
                backing = FilePageBacking(self._store.data_dir / PAGE_SEGMENT_NAME)
                if self._paged_mst:
                    self._page_backing = backing
                else:
                    temp_backing = backing
            state = storage_codec.decode_latus_state_pages(
                sections["latus/state_pages"], backing,
                cache_pages=self._mst_cache_pages,
            )
        else:
            state = storage_codec.decode_latus_state(sections["latus/state"])
        state = self._rehouse_state(state)
        if temp_backing is not None:
            temp_backing.close()
        return state

    def _rehouse_state(self, state: LatusState) -> LatusState:
        """Move a recovered state onto this node's configured node store."""
        paged = isinstance(state.mst.node_store, PagedNodeStore)
        if paged == self._paged_mst:
            return state
        fresh = LatusState(state.mst.depth, node_store=self._make_node_store())
        leaves = dict(state.mst.node_store.leaf_items())
        if leaves:
            fresh.mst._tree.set_leaves(leaves)
        fresh.mst._touched = set(state.mst._touched)
        fresh.backward_transfers = list(state.backward_transfers)
        return fresh

    def _restore_snapshot(self, sections: dict[str, bytes]) -> None:
        try:
            self.state = self._restore_state_section(sections)
            _, last_ref, skipped = storage_codec.decode_latus_meta(
                sections["latus/meta"]
            )
            self.epoch = storage_codec.decode_epoch_ledger(sections["latus/epoch"])
            blocks = [
                wire.decode_sidechain_block(raw)
                for raw in storage_codec.decode_blob_sequence(
                    sections["latus/blocks"]
                )
            ]
            self.utxo_index = storage_codec.decode_utxo_index(
                sections["latus/utxos"]
            )
            synced = storage_codec.decode_synced_mc(sections["latus/synced_mc"])
            seeds, stakes = storage_codec.decode_consensus(
                sections["latus/consensus"]
            )
            self.certificates = [
                wire.decode_withdrawal_certificate(raw)
                for raw in storage_codec.decode_blob_sequence(
                    sections["latus/certs"]
                )
            ]
            self.anchors = storage_codec.decode_anchors(sections["latus/anchors"])
            restored_txs = [
                wire.decode_latus_transaction(raw)
                for raw in storage_codec.decode_blob_sequence(
                    sections["latus/submitted"]
                )
            ]
        except KeyError as exc:
            raise StorageError(f"snapshot is missing section {exc}")
        self.blocks = blocks
        self.last_referenced_mc_height = last_ref
        self.skipped_slots = list(skipped)
        self._epoch_seeds = seeds
        self._epoch_stakes = stakes
        self.included_txids = {
            tx.txid for block in blocks for tx in block.transactions
        }
        # merge the durable wallet mempool with anything already in memory
        known = {tx.txid for tx in self.submitted_txs}
        self.submitted_txs.extend(
            tx for tx in restored_txs if tx.txid not in known
        )
        # MC heights synced but not yet referenced were queued in memory at
        # crash time; dropping them lets the next sync() re-process them
        self.synced_mc = [(h, hsh) for h, hsh in synced if h <= last_ref]
        self.mc_queue = []
        # rollback points below the tip cannot be reconstructed from a
        # snapshot; a reorg that deep falls back to a full rebuild
        self.block_snapshots = [None] * (len(blocks) - 1) if blocks else []
        if blocks:
            self._capture_snapshot()
        self._attach_store_hooks()

    def _replay_wal(self, records: list[tuple[int, bytes]]) -> None:
        staged_batches: list[dict[int, int]] = []
        index = 0
        while index < len(records):
            kind, payload = records[index]
            if kind == SC_TX:
                tx = wire.decode_latus_transaction(payload)
                if tx.txid not in {t.txid for t in self.submitted_txs}:
                    self.submitted_txs.append(tx)
            elif kind == SC_LEAF_BATCH:
                staged_batches.append(decode_leaf_batch(payload))
            elif kind == SC_BLOCK:
                block = wire.decode_sidechain_block(payload)
                merged: dict[int, int] = {}
                for batch in staged_batches:
                    merged.update(batch)
                staged_batches = []
                self._replay_block(block, merged if merged else None)
                boundary = (
                    block.mc_refs
                    and block.mc_refs[-1].mc_height
                    == self.config.schedule.last_height(self.epoch.epoch_id)
                )
                if boundary:
                    if (
                        index + 1 < len(records)
                        and records[index + 1][0] == SC_CERT
                    ):
                        certificate = wire.decode_withdrawal_certificate(
                            records[index + 1][1]
                        )
                        self._restore_certificate(certificate)
                        index += 1
                    else:
                        # the crash hit between the block commit and the
                        # certificate record: re-prove the epoch
                        self._close_withdrawal_epoch(block)
                self._capture_snapshot()
            elif kind == SC_CERT:
                # certificate whose boundary block is in the snapshot
                certificate = wire.decode_withdrawal_certificate(payload)
                if not any(c.id == certificate.id for c in self.certificates):
                    self._restore_certificate(certificate)
            else:
                raise StorageError(
                    f"unexpected mainchain record (kind {kind}) in a Latus store"
                )
            index += 1
        # Leaf batches after the last block record belong to a block whose
        # commit marker never hit the disk — the WAL tail the recovery
        # contract allows to drop (the tree never applied them pre-crash
        # only if the process died mid-group; either way the deterministic
        # resync covers the difference).  Silently ignored.

    def _replay_block(
        self, block: SidechainBlock, updates: dict[int, int] | None
    ) -> None:
        """Apply one previously-validated block from the WAL (trusted path)."""
        if block.parent_hash != self.tip_hash:
            raise StorageError("WAL block does not extend the stored chain")
        if block.height != self.height + 1:
            raise StorageError("WAL block height does not match the stored chain")
        self._ensure_consensus_epoch(block.slot // self.params.slots_per_epoch)
        if updates is None:
            updates = _derive_leaf_updates(block, self.params.mst_depth)
        self.state.mst.apply_leaf_batch(updates)
        for tx in block.ordered_transitions():
            self._index_transition(tx)
            self.state.backward_transfers.extend(_transition_bts(tx))
        if self.state.digest() != block.state_digest:
            raise StorageError(
                f"replayed state digest mismatch at height {block.height}"
            )
        self.blocks.append(block)
        self.included_txids.update(tx.txid for tx in block.transactions)
        if block.mc_refs:
            self.last_referenced_mc_height = block.mc_refs[-1].mc_height
            top = self.synced_mc[-1][0] if self.synced_mc else -1
            for ref in block.mc_refs:
                if ref.mc_height > top:
                    self.synced_mc.append((ref.mc_height, ref.mc_block_hash))
                    top = ref.mc_height
        self.epoch.transitions.extend(block.ordered_transitions())
        self.epoch.referenced_mc_hashes.extend(
            ref.mc_block_hash for ref in block.mc_refs
        )

    def _restore_certificate(self, certificate: WithdrawalCertificate) -> None:
        """Adopt a logged certificate at an epoch boundary without re-proving."""
        epoch_id = self.epoch.epoch_id
        final_state = self.state.copy()
        self.certificates.append(certificate)
        self.anchors[epoch_id] = CertificateAnchor(
            certificate=certificate,
            mst_root=final_state.mst_root,
            state_snapshot=final_state,
            mst_delta=MstDelta.from_positions(
                self.params.mst_depth, final_state.mst.touched_positions
            ),
        )
        self.state.start_new_epoch()
        self.epoch = EpochLedger(
            epoch_id=epoch_id + 1, start_state=self.state.copy()
        )

    def add_forger(self, keypair: KeyPair) -> None:
        """Register a stakeholder key this node may forge with.

        In a deployment every stakeholder runs their own forging node; the
        single-process harness registers all simulated stakeholders here so
        their slots are not skipped.
        """
        self.forgers[address_to_field(address_of(keypair.public))] = keypair

    def submit_transaction(self, tx: LatusTransaction) -> None:
        """Queue a wallet transaction for inclusion."""
        self._require_running()
        if isinstance(tx, (ForwardTransfersTx, BackwardTransferRequestsTx)):
            raise ConsensusError(
                "FTTx/BTRTx are MC-defined; they cannot be submitted directly"
            )
        self.submitted_txs.append(tx)
        if self._store is not None and not self._recovering:
            self._store.append(SC_TX, tx.encode())

    def pending_transactions(self) -> list[LatusTransaction]:
        """Submitted transactions not yet included in a block."""
        return [tx for tx in self.submitted_txs if tx.txid not in self.included_txids]

    def sync(self) -> list[SidechainBlock]:
        """Follow the mainchain; returns sidechain blocks forged by this call.

        Detects MC reorgs by comparing synced hashes to the current MC
        active chain; on divergence, only the sidechain blocks referencing
        orphaned MC blocks are reverted (§5.1's fork resolution) — history
        below the fork point is restored from snapshots so it keeps
        matching certificates the MC already adopted.
        """
        self._require_running()
        divergence = self._find_divergence()
        if divergence is not None:
            self._rollback_before(divergence)
        forged: list[SidechainBlock] = []
        while self.synced_mc_height < self.mc.height:
            forged.extend(self._process_mc_height(self.synced_mc_height + 1))
        return forged

    @property
    def synced_mc_height(self) -> int:
        """Highest MC height this node has processed."""
        if self.synced_mc:
            return self.synced_mc[-1][0]
        return min(self.config.start_block - 1, self.mc.height)

    # -- stake & leadership --------------------------------------------------------------

    def stake_distribution(self) -> StakeDistribution:
        """Current stake: the full UTXO population aggregated by owner."""
        return StakeDistribution.from_utxos(self.utxo_index.values())

    def leader_schedule(self, consensus_epoch: int) -> LeaderSchedule:
        """The leader schedule of a consensus epoch seen so far."""
        if consensus_epoch not in self._epoch_seeds:
            raise ConsensusError(f"consensus epoch {consensus_epoch} not yet started")
        return LeaderSchedule(
            epoch=consensus_epoch,
            seed=self._epoch_seeds[consensus_epoch],
            distribution=self._epoch_stakes[consensus_epoch],
            slots_per_epoch=self.params.slots_per_epoch,
            bootstrap_leader=address_to_field(self.creator.address),
        )

    # -- MC following ---------------------------------------------------------------------

    def _find_divergence(self) -> int | None:
        """First synced MC height no longer on the active chain, if any."""
        if not self.synced_mc:
            return None
        height, stored_hash = self.synced_mc[-1]
        if height <= self.mc.height and self.mc.state.block_hash_at(height) == stored_hash:
            return None  # hash-chain property: the whole prefix matches
        for height, stored_hash in self.synced_mc:
            if height > self.mc.height:
                return height
            if self.mc.state.block_hash_at(height) != stored_hash:
                return height
        return None

    def _rollback_before(self, divergence: int) -> None:
        """Revert every SC block referencing MC heights >= ``divergence``."""
        keep = 0
        for i, block in enumerate(self.blocks):
            if block.mc_refs and block.mc_refs[-1].mc_height >= divergence:
                break
            keep = i + 1
        if keep == 0:
            # the entire sidechain history referenced the orphaned branch
            self._reset_chain_state()
            self._reset_durable_state()
            return
        snapshot = self.block_snapshots[keep - 1]
        if snapshot is None:
            # a disk-recovered node only has the tip rollback point; a reorg
            # reaching below the recovered snapshot falls back to a rebuild
            self._reset_chain_state()
            self._reset_durable_state()
            return
        self.blocks = self.blocks[:keep]
        self.block_snapshots = self.block_snapshots[:keep]
        self.state = snapshot.state.copy()
        self.utxo_index = dict(snapshot.utxo_index)
        self.epoch = snapshot.epoch.copy()
        self.last_referenced_mc_height = snapshot.last_referenced_mc_height
        self.included_txids = set(snapshot.included_txids)
        self.certificates = self.certificates[: snapshot.certificates_len]
        self.anchors = {
            e: a for e, a in self.anchors.items() if e < self.epoch.epoch_id
        }
        self._epoch_seeds = dict(snapshot.epoch_seeds)
        self._epoch_stakes = dict(snapshot.epoch_stakes)
        self.synced_mc = [
            (h, block_hash) for h, block_hash in self.synced_mc if h < divergence
        ]
        self.mc_queue = []
        self._attach_store_hooks()
        # the store's history now diverges from the chain: re-seed it with a
        # fresh snapshot of the post-rollback state
        self._reset_durable_state()
        self._resubmit_reverted_certificates()

    def _resubmit_reverted_certificates(self) -> None:
        """Re-queue certificates whose MC adoption was reverted by a reorg.

        The MC mempool drops a certificate once it is mined; if the mining
        block is later orphaned the certificate must be resubmitted — the
        submission-window rules then decide whether it can still make it.
        """
        if not self.auto_submit_certificates:
            return
        entry = self.mc.state.cctp.sidechains.get(self.ledger_id)
        adopted = (
            {record.certificate.id for record in entry.certificates.values()}
            if entry is not None
            else set()
        )
        for certificate in self.certificates:
            if certificate.id in adopted:
                continue
            try:
                self.mc.submit_transaction(CertificateTx(wcert=certificate))
            except ZendooError:
                pass  # already queued

    def _process_mc_height(self, height: int) -> list[SidechainBlock]:
        if height < self.config.start_block:
            # Before activation there are no slots; nothing to record.
            mc_block = self.mc.chain.block_at_height(height)
            self.synced_mc.append((height, mc_block.hash))
            return []
        mc_block = self.mc.chain.block_at_height(height)
        self.synced_mc.append((height, mc_block.hash))
        self.mc_queue.append(mc_block)

        slot = height - self.config.start_block
        consensus_epoch = slot // self.params.slots_per_epoch
        self._ensure_consensus_epoch(consensus_epoch)
        schedule = self.leader_schedule(consensus_epoch)
        leader = schedule.leader_of(slot % self.params.slots_per_epoch)

        forger = self.forgers.get(leader)
        if forger is None:
            self.skipped_slots.append(slot)
            return []
        return self._forge_pending(forger, slot)

    def _ensure_consensus_epoch(self, consensus_epoch: int) -> None:
        """Fix the stake snapshot and randomness when a new epoch starts."""
        if consensus_epoch in self._epoch_seeds:
            return
        previous = max(self._epoch_seeds)
        for epoch in range(previous + 1, consensus_epoch + 1):
            self._epoch_seeds[epoch] = next_epoch_seed(
                self._epoch_seeds[epoch - 1], epoch
            )
            self._epoch_stakes[epoch] = self.stake_distribution()

    # -- forging -------------------------------------------------------------------------

    def _forge_pending(self, forger: KeyPair, slot: int) -> list[SidechainBlock]:
        """Forge blocks covering the queued MC references.

        Multiple blocks may be forged at one slot boundary when the queue
        crosses a withdrawal-epoch boundary: the paper restricts a block from
        referencing MC blocks of two different withdrawal epochs (§5.1.1),
        so the queue is split at each epoch-last MC block.
        """
        forged = []
        while self.mc_queue:
            batch = self._take_reference_batch()
            block = self._forge_block(forger, slot, batch)
            forged.append(block)
            last_height = batch[-1].height
            if last_height == self.config.schedule.last_height(self.epoch.epoch_id):
                self._close_withdrawal_epoch(block)
            self._capture_snapshot()
        return forged

    def _capture_snapshot(self) -> None:
        """Record the rollback point for the block just applied."""
        self.block_snapshots.append(
            _NodeSnapshot(
                state=self.state.copy(),
                utxo_index=dict(self.utxo_index),
                epoch=self.epoch.copy(),
                last_referenced_mc_height=self.last_referenced_mc_height,
                included_txids=set(self.included_txids),
                certificates_len=len(self.certificates),
                epoch_seeds=dict(self._epoch_seeds),
                epoch_stakes=dict(self._epoch_stakes),
            )
        )

    def _take_reference_batch(self) -> list[MainchainBlock]:
        """Queued MC blocks up to (and including) the epoch-last block."""
        boundary = self.config.schedule.last_height(self.epoch.epoch_id)
        batch = []
        while self.mc_queue:
            batch.append(self.mc_queue.pop(0))
            if batch[-1].height == boundary:
                break
        return batch

    def _forge_block(
        self, forger: KeyPair, slot: int, mc_batch: list[MainchainBlock]
    ) -> SidechainBlock:
        if not mc_batch:
            raise ForgingError("nothing to reference")
        working = self.state
        refs = []
        for mc_block in mc_batch:
            ref = build_mc_ref(mc_block, self.ledger_id, working.mst)
            refs.append(ref)
            for tx in _ref_transitions(ref):
                working.apply(tx)
                self._index_transition(tx)

        included: list[LatusTransaction] = []
        for tx in self.pending_transactions():
            try:
                working.apply(tx)
            except StateTransitionError:
                continue
            self._index_transition(tx)
            included.append(tx)

        block = forge_block(
            parent_hash=self.tip_hash,
            height=self.height + 1,
            slot=slot,
            forger=forger,
            mc_refs=tuple(refs),
            transactions=tuple(included),
            state_digest=working.digest(),
        )
        self.blocks.append(block)
        _BLOCKS_FORGED.inc()
        self.included_txids.update(tx.txid for tx in included)
        self.last_referenced_mc_height = mc_batch[-1].height
        self.epoch.transitions.extend(block.ordered_transitions())
        self.epoch.referenced_mc_hashes.extend(b.hash for b in mc_batch)
        # the block record is the commit marker for the leaf batches the
        # journal staged while the transitions applied: one sync per block
        self._persist_block(block)
        return block

    def _index_transition(self, tx: LatusTransaction) -> None:
        """Maintain the full-UTXO index across one applied transition."""
        if isinstance(tx, PaymentTx):
            for signed in tx.inputs:
                self.utxo_index.pop(signed.utxo.nonce, None)
            for utxo in tx.outputs:
                self.utxo_index[utxo.nonce] = utxo
        elif isinstance(tx, BackwardTransferTx):
            for signed in tx.inputs:
                self.utxo_index.pop(signed.utxo.nonce, None)
        elif isinstance(tx, ForwardTransfersTx):
            for utxo in tx.outputs:
                self.utxo_index[utxo.nonce] = utxo
        elif isinstance(tx, BackwardTransferRequestsTx):
            for utxo in tx.inputs:
                self.utxo_index.pop(utxo.nonce, None)

    # -- withdrawal certificates -----------------------------------------------------------

    def _close_withdrawal_epoch(self, last_block: SidechainBlock) -> None:
        """Prove the epoch, emit the certificate and reset transient state."""
        epoch_id = self.epoch.epoch_id
        proof_result = self.prover.prove_epoch(
            self.epoch.start_state, self.epoch.transitions
        )
        final_state = self.state.copy()
        delta = MstDelta.from_positions(
            self.params.mst_depth, self.state.mst.touched_positions
        )
        self.last_epoch_stats = proof_result.stats
        witness = WCertWitness(
            epoch_proof=proof_result.proof,
            start_state_digest=self.epoch.start_state.digest(),
            final_state=final_state,
            bt_list=tuple(self.state.backward_transfers),
            last_block=last_block,
            prev_epoch_last_block_hash=self._epoch_boundary_hash(epoch_id - 1),
            referenced_mc_hashes=tuple(self.epoch.referenced_mc_hashes),
            mst_delta=delta,
            touched_positions=self.state.mst.touched_positions,
            epoch_stats=proof_result.stats,
        )
        certificate = self.cert_builder.build(
            epoch_id=epoch_id,
            witness=witness,
            h_prev_epoch_last=self._epoch_boundary_hash(epoch_id - 1),
            h_epoch_last=self._epoch_boundary_hash(epoch_id),
        )
        self.certificates.append(certificate)
        _CERTIFICATES_BUILT.inc()
        self.last_wcert_witness = witness
        self.anchors[epoch_id] = CertificateAnchor(
            certificate=certificate,
            mst_root=final_state.mst_root,
            state_snapshot=final_state,
            mst_delta=delta,
        )
        if self.auto_submit_certificates:
            try:
                self.mc.submit_transaction(CertificateTx(wcert=certificate))
            except ZendooError:
                pass  # duplicate after a rebuild: already queued/confirmed

        if self._store is not None and not self._recovering:
            # the certificate record lets recovery skip re-proving; if the
            # crash lands before it, replay re-proves the epoch instead
            self._store.append(SC_CERT, certificate.encode())

        # Start the next withdrawal epoch (§5.2.1: BT list is transient).
        self.state.start_new_epoch()
        self.epoch = EpochLedger(
            epoch_id=epoch_id + 1, start_state=self.state.copy()
        )
        # epoch boundaries are the periodic snapshot points: fold the log in
        self._persist_snapshot()

    def _epoch_boundary_hash(self, epoch_id: int) -> bytes:
        """Active-chain hash of a withdrawal epoch's last MC block."""
        if epoch_id < 0:
            return b"\x00" * 32
        height = self.config.schedule.last_height(epoch_id)
        return self.mc.state.block_hash_at(height)

    # -- receiving foreign blocks -------------------------------------------------------------

    def bootstrap_from(self, blocks: list[SidechainBlock]) -> None:
        """Bootstrap a fresh node from a peer's block history.

        Every block passes the full :meth:`receive_block` validation
        (leader lottery, reference commitment proofs, state re-execution),
        so a node that bootstraps successfully ends byte-identical to the
        serving peer — the paper's determinism property, exercised across a
        whole chain.  The node must be freshly constructed (no local blocks)
        and its mainchain view must already cover the referenced heights.
        """
        if self.blocks:
            raise ConsensusError("bootstrap requires a fresh node")
        # record the MC blocks the history will reference so that epoch
        # boundary lookups and reorg detection work afterwards
        for height in range(self.config.start_block, self.mc.height + 1):
            mc_block = self.mc.chain.block_at_height(height)
            self.synced_mc.append((height, mc_block.hash))
            self.mc_queue.append(mc_block)
        for block in blocks:
            self.receive_block(block)

    def receive_block(self, block: SidechainBlock) -> None:
        """Validate and apply a block forged by another node.

        Raises :class:`ConsensusError` on any rule violation.  The block must
        directly extend this node's tip (the harness delivers blocks in
        order; full SC fork choice is in
        :mod:`repro.latus.consensus.fork_choice`).
        """
        self._require_running()
        if block.parent_hash != self.tip_hash:
            raise ConsensusError("block does not extend the local tip")
        if block.height != self.height + 1:
            raise ConsensusError("wrong block height")
        if not block.verify_signature():
            raise ConsensusError("bad forger signature")

        slot = block.slot
        consensus_epoch = slot // self.params.slots_per_epoch
        self._ensure_consensus_epoch(consensus_epoch)
        schedule = self.leader_schedule(consensus_epoch)
        if not schedule.is_leader(
            block.forger_addr, slot % self.params.slots_per_epoch
        ):
            raise ConsensusError("forger is not the slot leader")

        expected_height = self.last_referenced_mc_height + 1
        for ref in block.mc_refs:
            if ref.mc_height != expected_height:
                raise ConsensusError("MC references are not contiguous")
            verify_mc_ref(ref, self.ledger_id)
            expected_height += 1

        working = self.state
        try:
            for tx in block.ordered_transitions():
                working.apply(tx)  # raises StateTransitionError on invalidity
                self._index_transition(tx)
            if working.digest() != block.state_digest:
                raise ConsensusError("state digest mismatch")
        except (ConsensusError, StateTransitionError):
            # journaled leaf batches from the rejected block must not ride
            # the next block's commit
            if self._store is not None and not self._store.read_only:
                self._store.discard_staged()
            raise

        self.blocks.append(block)
        _BLOCKS_RECEIVED.inc()
        self.included_txids.update(tx.txid for tx in block.transactions)
        if block.mc_refs:
            self.last_referenced_mc_height = block.mc_refs[-1].mc_height
            # these MC blocks no longer await a local reference
            covered = {ref.mc_height for ref in block.mc_refs}
            self.mc_queue = [b for b in self.mc_queue if b.height not in covered]
        self.epoch.transitions.extend(block.ordered_transitions())
        self.epoch.referenced_mc_hashes.extend(
            ref.mc_block_hash for ref in block.mc_refs
        )
        self._persist_block(block)
        if (
            block.mc_refs
            and block.mc_refs[-1].mc_height
            == self.config.schedule.last_height(self.epoch.epoch_id)
        ):
            self._close_withdrawal_epoch(block)
        self._capture_snapshot()


def _ref_transitions(ref: MCBlockReference) -> list[LatusTransaction]:
    transitions: list[LatusTransaction] = []
    if ref.forward_transfers is not None:
        transitions.append(ref.forward_transfers)
    if ref.bt_requests is not None:
        transitions.append(ref.bt_requests)
    return transitions


def _transition_bts(tx: LatusTransaction) -> list:
    """Backward transfers one applied transition appends to the state."""
    if isinstance(tx, BackwardTransferTx):
        return list(tx.backward_transfers)
    if isinstance(tx, ForwardTransfersTx):
        return list(tx.rejected)
    if isinstance(tx, BackwardTransferRequestsTx):
        return list(tx.backward_transfers)
    return []


def _derive_leaf_updates(block: SidechainBlock, depth: int) -> dict[int, int]:
    """The ``{position: leaf}`` MST updates a validated block's transitions
    produce — the fallback when a WAL block has no preceding leaf-batch
    records (e.g. a store written before write-ahead journaling attached)."""
    from repro.crypto.fixed_merkle import EMPTY_LEAF

    updates: dict[int, int] = {}
    for tx in block.ordered_transitions():
        if isinstance(tx, PaymentTx):
            for signed in tx.inputs:
                updates[signed.utxo.position(depth)] = EMPTY_LEAF
            for utxo in tx.outputs:
                updates[utxo.position(depth)] = utxo.leaf_value
        elif isinstance(tx, BackwardTransferTx):
            for signed in tx.inputs:
                updates[signed.utxo.position(depth)] = EMPTY_LEAF
        elif isinstance(tx, ForwardTransfersTx):
            for utxo in tx.outputs:
                updates[utxo.position(depth)] = utxo.leaf_value
        elif isinstance(tx, BackwardTransferRequestsTx):
            for utxo in tx.inputs:
                updates[utxo.position(depth)] = EMPTY_LEAF
    return updates
