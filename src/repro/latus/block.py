"""Latus sidechain blocks.

A sidechain block is forged by the slot leader; it carries zero or more
mainchain block references (contiguous, §5.1) followed by regular sidechain
transactions, and commits to the resulting state digest.  The forger signs
the block id with the key whose address won the slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair, address_of
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.latus.mc_ref import MCBlockReference
from repro.latus.transactions import LatusTransaction
from repro.latus.utxo import address_to_field


@dataclass(frozen=True)
class SidechainBlock:
    """A full Latus block."""

    parent_hash: bytes
    height: int
    slot: int
    forger_pubkey: PublicKey
    mc_refs: tuple[MCBlockReference, ...]
    transactions: tuple[LatusTransaction, ...]
    #: Digest of the state *after* applying this block (consensus-checked).
    state_digest: int
    signature: Signature

    def encode_unsigned(self) -> bytes:
        """Canonical encoding without the forger signature."""
        enc = (
            Encoder()
            .raw(self.parent_hash)
            .u64(self.height)
            .u64(self.slot)
            .var_bytes(self.forger_pubkey.to_bytes())
            .field_element(self.state_digest)
        )
        enc.sequence(self.mc_refs, lambda e, r: e.raw(r.mc_block_hash))
        enc.sequence(self.transactions, lambda e, t: e.raw(t.txid))
        return enc.done()

    @cached_property
    def hash(self) -> bytes:
        """The block id."""
        return hash_bytes(self.encode_unsigned(), b"latus/block")

    @property
    def forger_addr(self) -> int:
        """The forger's address as a field element (matched to slot leader)."""
        return address_to_field(address_of(self.forger_pubkey))

    def verify_signature(self) -> bool:
        """Check the forger's signature over the block id."""
        return self.forger_pubkey.verify(self.hash, self.signature)

    def ordered_transitions(self) -> list[LatusTransaction]:
        """All state transitions in application order.

        Per reference: the FTTx then the BTRTx (synchronized transactions
        come first, Fig. 7), then the block's regular transactions.
        """
        transitions: list[LatusTransaction] = []
        for ref in self.mc_refs:
            if ref.forward_transfers is not None:
                transitions.append(ref.forward_transfers)
            if ref.bt_requests is not None:
                transitions.append(ref.bt_requests)
        transitions.extend(self.transactions)
        return transitions


def forge_block(
    parent_hash: bytes,
    height: int,
    slot: int,
    forger: KeyPair,
    mc_refs: tuple[MCBlockReference, ...],
    transactions: tuple[LatusTransaction, ...],
    state_digest: int,
) -> SidechainBlock:
    """Assemble and sign a sidechain block."""
    draft = SidechainBlock(
        parent_hash=parent_hash,
        height=height,
        slot=slot,
        forger_pubkey=forger.public,
        mc_refs=mc_refs,
        transactions=transactions,
        state_digest=state_digest,
        signature=Signature(e=1, s=1),
    )
    return SidechainBlock(
        parent_hash=parent_hash,
        height=height,
        slot=slot,
        forger_pubkey=forger.public,
        mc_refs=mc_refs,
        transactions=transactions,
        state_digest=state_digest,
        signature=forger.sign(draft.hash),
    )
