"""The Latus system state and its transition function (paper §5.2.1, §5.3).

``state = (MST, backward_transfers)``: the UTXO commitment tree plus the
transient list of backward transfers initiated in the current withdrawal
epoch.  :meth:`LatusState.apply` is the paper's ``update(t, s)``; an invalid
``(t, s)`` pair raises :class:`~repro.errors.StateTransitionError` — the
``⊥`` case — leaving the state unmodified (every apply validates a complete
plan before mutating anything).
"""

from __future__ import annotations

from repro.core.transfers import BackwardTransfer
from repro.crypto.field import element_from_bytes
from repro.crypto.mimc import mimc_hash
from repro.errors import StateTransitionError
from repro.latus.mst import MerkleStateTree
from repro.latus.transactions import (
    BackwardTransferRequestsTx,
    BackwardTransferTx,
    ForwardTransfersTx,
    LatusTransaction,
    PaymentTx,
    SignedInput,
    build_btr_tx,
    build_forward_transfers_tx,
)
from repro.latus.utxo import Utxo


def _bt_field(bt: BackwardTransfer) -> tuple[int, int]:
    return (element_from_bytes(bt.receiver_addr), bt.amount)


class LatusState:
    """The full sidechain state with validated transition application."""

    def __init__(self, mst_depth: int, node_store=None) -> None:
        self.mst = MerkleStateTree(mst_depth, node_store=node_store)
        self.backward_transfers: list[BackwardTransfer] = []

    # -- digests ------------------------------------------------------------------

    def digest(self) -> int:
        """``H(state)``: a field-element commitment to (MST, BT list)."""
        elements = [self.mst.root]
        for bt in self.backward_transfers:
            elements.extend(_bt_field(bt))
        return mimc_hash(elements)

    @property
    def mst_root(self) -> int:
        """The MST root hash."""
        return self.mst.root

    # -- transition function (the paper's ``update``) -------------------------------

    def apply(self, tx: LatusTransaction) -> None:
        """Apply one transaction; raises :class:`StateTransitionError` on ⊥."""
        if isinstance(tx, PaymentTx):
            self._apply_payment(tx)
        elif isinstance(tx, ForwardTransfersTx):
            self._apply_forward_transfers(tx)
        elif isinstance(tx, BackwardTransferTx):
            self._apply_backward_transfer(tx)
        elif isinstance(tx, BackwardTransferRequestsTx):
            self._apply_btr_tx(tx)
        else:
            raise StateTransitionError(f"unknown transaction type {type(tx).__name__}")

    def _apply_payment(self, tx: PaymentTx) -> None:
        """§5.3.1: spend inputs, create outputs, conserve value."""
        if not tx.inputs:
            raise StateTransitionError("payment has no inputs")
        self._check_authorizations(tx.inputs, tx.signing_digest)
        if tx.total_in < tx.total_out:
            raise StateTransitionError(
                f"payment outputs {tx.total_out} exceed inputs {tx.total_in}"
            )
        removals = self._plan_removals(i.utxo for i in tx.inputs)
        self._plan_additions(tx.outputs, removals)
        self._execute(
            [i.utxo for i in tx.inputs], list(tx.outputs), new_bts=[]
        )

    def _apply_forward_transfers(self, tx: ForwardTransfersTx) -> None:
        """§5.3.2: mint valid FT outputs, queue refunds for failed FTs.

        The transaction must equal the deterministic derivation from its FT
        list and the current state — otherwise the forger lied about which
        transfers failed.
        """
        expected = build_forward_transfers_tx(tx.mc_block_id, tx.transfers, self.mst)
        if expected.outputs != tx.outputs or expected.rejected != tx.rejected:
            raise StateTransitionError(
                "forward-transfers transaction does not match its deterministic derivation"
            )
        self._execute([], list(tx.outputs), new_bts=list(tx.rejected))

    def _apply_backward_transfer(self, tx: BackwardTransferTx) -> None:
        """§5.3.3: destroy inputs, queue backward transfers."""
        if not tx.inputs:
            raise StateTransitionError("backward transfer has no inputs")
        self._check_authorizations(tx.inputs, tx.signing_digest)
        if tx.total_in < tx.total_out:
            raise StateTransitionError(
                f"backward transfers {tx.total_out} exceed inputs {tx.total_in}"
            )
        for bt in tx.backward_transfers:
            if bt.amount <= 0:
                raise StateTransitionError("backward transfer amount must be positive")
        self._plan_removals(i.utxo for i in tx.inputs)
        self._execute(
            [i.utxo for i in tx.inputs], [], new_bts=list(tx.backward_transfers)
        )

    def _apply_btr_tx(self, tx: BackwardTransferRequestsTx) -> None:
        """§5.3.4: consume UTXOs claimed by valid synchronized BTRs."""
        expected = build_btr_tx(tx.mc_block_id, tx.requests, self.mst)
        if (
            expected.inputs != tx.inputs
            or expected.backward_transfers != tx.backward_transfers
        ):
            raise StateTransitionError(
                "BTR transaction does not match its deterministic derivation"
            )
        self._execute(
            list(tx.inputs), [], new_bts=list(tx.backward_transfers)
        )

    # -- planning helpers (validate before mutate) ------------------------------------

    def _check_authorizations(
        self, inputs: tuple[SignedInput, ...], digest: bytes
    ) -> None:
        for signed in inputs:
            if not signed.owner_matches():
                raise StateTransitionError("input pubkey does not own the utxo")
            if not signed.pubkey.verify(digest, signed.signature):
                raise StateTransitionError("bad input signature")

    def _plan_removals(self, utxos) -> set[int]:
        removed: set[int] = set()
        for utxo in utxos:
            position = self.mst.position_of(utxo)
            if position in removed:
                raise StateTransitionError("transaction spends the same slot twice")
            if not self.mst.contains(utxo):
                raise StateTransitionError("input utxo is not in the state")
            removed.add(position)
        return removed

    def _plan_additions(self, outputs, freed: set[int]) -> None:
        planned: set[int] = set()
        for utxo in outputs:
            if utxo.amount <= 0:
                raise StateTransitionError("output amount must be positive")
            position = self.mst.position_of(utxo)
            occupied = self.mst.slot_occupied(position) and position not in freed
            if occupied or position in planned:
                raise StateTransitionError(
                    f"output collides with occupied MST slot {position}"
                )
            planned.add(position)

    def _execute(
        self,
        remove: list[Utxo],
        add: list[Utxo],
        new_bts: list[BackwardTransfer],
    ) -> None:
        # one batched Merkle update per transaction: each distinct dirty
        # ancestor is rehashed once, not once per input/output
        self.mst.apply_batch(add=add, remove=remove)
        self.backward_transfers.extend(new_bts)

    # -- epoch lifecycle ------------------------------------------------------------

    def start_new_epoch(self) -> None:
        """Reset the transient per-epoch data (§5.2.1: BT list is transient)."""
        self.backward_transfers = []
        self.mst.reset_touched()

    # -- snapshotting -----------------------------------------------------------------

    def copy(self) -> "LatusState":
        """Independent snapshot."""
        clone = LatusState.__new__(LatusState)
        clone.mst = self.mst.copy()
        clone.backward_transfers = list(self.backward_transfers)
        return clone
