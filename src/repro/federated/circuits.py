"""Certificate and CSW circuits for the federated sidechain.

This is the paper's §4.1.2 alternative made concrete: "the sidechain may
adopt a centralized solution where the zk-SNARK just verifies that a
certificate is signed by an authorized entity (like in [5])".  The
verification key — fixed at sidechain registration — binds the federation's
member public keys and the signing threshold through the circuit's
parameter digest, so the mainchain-side verification interface is exactly
the same as Latus's while the trust model is entirely different.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.transfers import BackwardTransfer, bt_list_root
from repro.crypto.field import element_from_bytes
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.snark.circuit import Circuit, CircuitBuilder
from repro.snark.gadgets.mimc import mimc_hash_gadget

_CERT_DOMAIN = b"federated/cert-sig"
_EXIT_DOMAIN = b"federated/exit-sig"


@dataclass(frozen=True)
class Federation:
    """The authorized signer set and its threshold."""

    members: tuple[PublicKey, ...]
    threshold: int

    def __post_init__(self) -> None:
        if not 1 <= self.threshold <= len(self.members):
            raise ValueError("threshold must be in [1, len(members)]")

    def digest(self) -> bytes:
        """Binds the signer set into verification keys."""
        enc = Encoder().u32(self.threshold)
        enc.sequence(self.members, lambda e, m: e.var_bytes(m.to_bytes()))
        return hash_bytes(enc.done(), b"federated/federation")


def certificate_message(
    ledger_id: bytes,
    epoch_id: int,
    quality: int,
    bt_list: tuple[BackwardTransfer, ...],
    h_epoch_last: bytes,
    state_digest: int,
) -> bytes:
    """The message federation members co-sign to endorse a certificate.

    Covers everything the mainchain enforces in ``wcert_sysdata`` plus the
    committed state, so a signature cannot be replayed across epochs,
    branches or payload changes.
    """
    enc = (
        Encoder()
        .raw(ledger_id)
        .u64(epoch_id)
        .u64(quality)
        .raw(bt_list_root(bt_list))
        .raw(h_epoch_last)
        .field_element(state_digest)
    )
    return hash_bytes(enc.done(), _CERT_DOMAIN)


def exit_message(
    ledger_id: bytes, receiver: bytes, amount: int, nullifier: bytes
) -> bytes:
    """The message federation members co-sign to authorize a CSW exit."""
    enc = (
        Encoder().raw(ledger_id).var_bytes(receiver).u64(amount).var_bytes(nullifier)
    )
    return hash_bytes(enc.done(), _EXIT_DOMAIN)


def collect_signatures(
    members: Sequence[KeyPair], message: bytes
) -> tuple[tuple[int, Signature], ...]:
    """Have each key sign ``message``; returns (member index, signature)."""
    return tuple((i, kp.sign(message)) for i, kp in enumerate(members))


def _count_valid(
    federation: Federation,
    message: bytes,
    signatures: tuple[tuple[int, Signature], ...],
) -> int:
    seen: set[int] = set()
    valid = 0
    for index, signature in signatures:
        if index in seen or not 0 <= index < len(federation.members):
            continue
        seen.add(index)
        if federation.members[index].verify(message, signature):
            valid += 1
    return valid


@dataclass(frozen=True)
class FederatedWCertWitness:
    """Everything a federation prover holds for one certificate."""

    ledger_id: bytes
    epoch_id: int
    quality: int
    bt_list: tuple[BackwardTransfer, ...]
    h_epoch_last: bytes
    state_digest: int
    signatures: tuple[tuple[int, Signature], ...]


class FederatedWCertCircuit(Circuit):
    """WCert statement: a quorum endorsed exactly this certificate."""

    circuit_id = "federated/wcert-v1"

    def __init__(self, federation: Federation) -> None:
        self.federation = federation

    def parameters_digest(self) -> bytes:
        return self.federation.digest()

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: FederatedWCertWitness,
    ) -> None:
        quality, mh_btlist, _h_prev, h_last, mh_proofdata = public_input
        quality_wire = builder.alloc_public(quality)
        builder.alloc_public(mh_btlist)
        builder.alloc_public(_h_prev)
        builder.alloc_public(h_last)

        # the public input is exactly what the witness describes
        builder.assert_native(
            element_from_bytes(bt_list_root(witness.bt_list)) == mh_btlist,
            "federated: MH(BTList) mismatch",
        )
        builder.assert_native(
            element_from_bytes(witness.h_epoch_last) == h_last,
            "federated: epoch-boundary block mismatch",
        )
        builder.enforce_equal(
            quality_wire, builder.constant(witness.quality), "federated/quality"
        )

        # the quorum check — the heart of this trust model
        message = certificate_message(
            witness.ledger_id,
            witness.epoch_id,
            witness.quality,
            witness.bt_list,
            witness.h_epoch_last,
            witness.state_digest,
        )
        valid = _count_valid(self.federation, message, witness.signatures)
        builder.assert_native(
            valid >= self.federation.threshold,
            f"federated: {valid} valid signatures < threshold "
            f"{self.federation.threshold}",
        )

        # proofdata = (state_digest,) bound in-circuit with real MiMC
        state_wire = builder.alloc(witness.state_digest)
        recomputed = mimc_hash_gadget(builder, [state_wire])
        mh_wire = builder.alloc_public(mh_proofdata)
        builder.enforce_equal(recomputed, mh_wire, "federated/mh-proofdata")


@dataclass(frozen=True)
class FederatedCswWitness:
    """Witness for a federation-authorized ceased-sidechain exit."""

    ledger_id: bytes
    receiver: bytes
    amount: int
    nullifier: bytes
    signatures: tuple[tuple[int, Signature], ...]


class FederatedCswCircuit(Circuit):
    """CSW statement: a quorum authorized this exact exit payment."""

    circuit_id = "federated/csw-v1"

    def __init__(self, federation: Federation) -> None:
        self.federation = federation

    def parameters_digest(self) -> bytes:
        return self.federation.digest()

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: FederatedCswWitness,
    ) -> None:
        _h_bw, nullifier, receiver_fe, amount, mh_proofdata = public_input
        builder.alloc_public(_h_bw)
        builder.alloc_public(nullifier)
        builder.alloc_public(receiver_fe)
        amount_wire = builder.alloc_public(amount)
        builder.alloc_public(mh_proofdata)

        builder.assert_native(
            element_from_bytes(witness.nullifier) == nullifier,
            "federated-csw: nullifier mismatch",
        )
        builder.assert_native(
            element_from_bytes(hash_bytes(witness.receiver, b"zendoo/receiver"))
            == receiver_fe,
            "federated-csw: receiver mismatch",
        )
        builder.enforce_equal(
            amount_wire, builder.constant(witness.amount), "federated-csw/amount"
        )

        message = exit_message(
            witness.ledger_id, witness.receiver, witness.amount, witness.nullifier
        )
        valid = _count_valid(self.federation, message, witness.signatures)
        builder.assert_native(
            valid >= self.federation.threshold,
            f"federated-csw: {valid} valid signatures < threshold "
            f"{self.federation.threshold}",
        )
