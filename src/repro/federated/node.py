"""The federated sidechain node.

A minimal "sidechain that is not a blockchain": a federation of ``n``
operators replicates an account ledger, applies client operations the
moment they arrive, and — through the standard CCTP surface — deposits
forward transfers, drains its withdrawal queue into per-epoch certificates
endorsed by a ``t``-of-``n`` quorum, and authorizes ceased-sidechain exits.

From the mainchain's perspective this sidechain is indistinguishable from
Latus: same registration transaction, same certificate interface, same
verifier — only the verification keys (and thus the statements they bind)
differ.  That interchangeability is the paper's decoupling claim.
"""

from __future__ import annotations

from repro.core.bootstrap import ProofdataSchema, SidechainConfig
from repro.core.transfers import (
    CeasedSidechainWithdrawal,
    WithdrawalCertificate,
    derive_ledger_id,
)
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair
from repro.encoding import Encoder
from repro.errors import StateTransitionError, ZendooError
from repro.federated.circuits import (
    Federation,
    FederatedCswCircuit,
    FederatedCswWitness,
    FederatedWCertCircuit,
    FederatedWCertWitness,
    certificate_message,
    collect_signatures,
    exit_message,
)
from repro.federated.ledger import AccountLedger, AccountTransfer, WithdrawalRequest
from repro.mainchain.node import MainchainNode
from repro.mainchain.transaction import CertificateTx, CoinTransaction
from repro.snark import proving


def federation_from_seeds(seeds: list[str], threshold: int) -> tuple[Federation, list[KeyPair]]:
    """Deterministic federation keys for tests and examples."""
    keys = [KeyPair.from_seed(f"federation/{seed}") for seed in seeds]
    federation = Federation(
        members=tuple(k.public for k in keys), threshold=threshold
    )
    return federation, keys


def federated_sidechain_config(
    seed: str,
    start_block: int,
    epoch_len: int,
    submit_len: int,
    federation: Federation,
) -> SidechainConfig:
    """A sidechain configuration carrying the federation-bound keys."""
    _, wcert_vk = proving.setup(FederatedWCertCircuit(federation))
    _, csw_vk = proving.setup(FederatedCswCircuit(federation))
    return SidechainConfig(
        ledger_id=derive_ledger_id(seed),
        start_block=start_block,
        epoch_len=epoch_len,
        submit_len=submit_len,
        wcert_vk=wcert_vk,
        btr_vk=None,  # §4.1.2.1: a sidechain may omit BTR support entirely
        csw_vk=csw_vk,
        wcert_proofdata=ProofdataSchema(fields=("state_digest",)),
        csw_proofdata=ProofdataSchema(),
    )


class FederatedNode:
    """One federation operator (in the simulation: all of them at once)."""

    def __init__(
        self,
        config: SidechainConfig,
        mc_node: MainchainNode,
        federation: Federation,
        member_keys: list[KeyPair],
        auto_submit_certificates: bool = True,
    ) -> None:
        self.config = config
        self.ledger_id = config.ledger_id
        self.mc = mc_node
        self.federation = federation
        self.member_keys = member_keys
        self.auto_submit_certificates = auto_submit_certificates
        self._wcert_pk, _ = proving.setup(FederatedWCertCircuit(federation))
        self._csw_pk, _ = proving.setup(FederatedCswCircuit(federation))
        #: Client operations in arrival order (kept for reorg replay).
        self.operation_log: list[AccountTransfer | WithdrawalRequest] = []
        self._replay_log_after_sync: list[AccountTransfer | WithdrawalRequest] = []
        self._exit_counter = 0
        self._reset()

    def _reset(self) -> None:
        self.ledger = AccountLedger()
        self.synced_mc: list[tuple[int, bytes]] = []
        self.current_epoch = 0
        self.certificates: list[WithdrawalCertificate] = []
        self._applied_ops: set[bytes] = set()

    # -- client surface ----------------------------------------------------------

    def submit_transfer(self, transfer: AccountTransfer) -> None:
        """Apply a client transfer immediately (no blocks to wait for)."""
        self.ledger.apply_transfer(transfer)
        self.operation_log.append(transfer)
        self._applied_ops.add(transfer.txid)

    def submit_withdrawal(self, request: WithdrawalRequest) -> None:
        """Queue a withdrawal for the next certificate."""
        self.ledger.apply_withdrawal(request)
        self.operation_log.append(request)

    def balance_of(self, addr: bytes) -> int:
        """Ledger balance of an account."""
        return self.ledger.balance_of(addr)

    # -- mainchain following --------------------------------------------------------

    @property
    def synced_mc_height(self) -> int:
        if self.synced_mc:
            return self.synced_mc[-1][0]
        return min(self.config.start_block - 1, self.mc.height)

    def sync(self) -> None:
        """Follow the MC: deposits, epoch boundaries, reorg recovery.

        Reorg recovery is a *full rebuild* with operation-log replay —
        unlike Latus's surgical per-block rollback.  Client operations are
        not anchored to sidechain blocks here, so after a reorg the replay
        may order operations differently relative to epoch boundaries and
        past-epoch certificates can diverge from re-execution; the trust
        anchor of this construction is the federation, which simply signs
        the post-reorg reality (see DESIGN.md §8).
        """
        if self._diverged():
            log = list(self.operation_log)
            self._reset()
            self.operation_log = []
            self._replay_log_after_sync = log
        while self.synced_mc_height < self.mc.height:
            self._process_height(self.synced_mc_height + 1)
        if self._replay_log_after_sync:
            pending = self._replay_log_after_sync
            self._replay_log_after_sync = []
            for op in pending:
                try:
                    if isinstance(op, AccountTransfer):
                        self.submit_transfer(op)
                    else:
                        self.submit_withdrawal(op)
                except StateTransitionError:
                    continue  # no longer valid on the new branch

    def _diverged(self) -> bool:
        if not self.synced_mc:
            return False
        height, stored = self.synced_mc[-1]
        if height > self.mc.height:
            return True
        return self.mc.state.block_hash_at(height) != stored

    def _process_height(self, height: int) -> None:
        block = self.mc.chain.block_at_height(height)
        self.synced_mc.append((height, block.hash))
        if height < self.config.start_block:
            return
        # deposits: forward transfers whose metadata is a 32-byte address
        for tx in block.transactions:
            if isinstance(tx, CoinTransaction):
                for ft in tx.forward_transfers:
                    if ft.ledger_id != self.ledger_id:
                        continue
                    if len(ft.receiver_metadata) == 32:
                        self.ledger.deposit(ft.receiver_metadata, ft.amount)
                    # else: malformed metadata — burned (as in Latus)
        schedule = self.config.schedule
        if height == schedule.last_height(self.current_epoch):
            self._close_epoch(block.hash)

    # -- certificates ------------------------------------------------------------------

    def _close_epoch(self, h_epoch_last: bytes) -> None:
        epoch_id = self.current_epoch
        bt_list = tuple(self.ledger.pending_withdrawals)
        quality = self.ledger.operations_applied
        state_digest = self.ledger.digest()
        message = certificate_message(
            self.ledger_id, epoch_id, quality, bt_list, h_epoch_last, state_digest
        )
        witness = FederatedWCertWitness(
            ledger_id=self.ledger_id,
            epoch_id=epoch_id,
            quality=quality,
            bt_list=bt_list,
            h_epoch_last=h_epoch_last,
            state_digest=state_digest,
            signatures=collect_signatures(self.member_keys, message),
        )
        proofdata = (state_digest,)
        draft = WithdrawalCertificate(
            ledger_id=self.ledger_id,
            epoch_id=epoch_id,
            quality=quality,
            bt_list=bt_list,
            proofdata=proofdata,
            proof=proving.Proof(data=bytes(proving.PROOF_SIZE)),
        )
        h_prev = (
            self.mc.state.block_hash_at(self.config.schedule.last_height(epoch_id - 1))
            if epoch_id > 0
            else b"\x00" * 32
        )
        public_input = draft.public_input(h_prev, h_epoch_last)
        proof = proving.prove(self._wcert_pk, public_input, witness)
        certificate = WithdrawalCertificate(
            ledger_id=self.ledger_id,
            epoch_id=epoch_id,
            quality=quality,
            bt_list=bt_list,
            proofdata=proofdata,
            proof=proof,
        )
        self.certificates.append(certificate)
        if self.auto_submit_certificates:
            try:
                self.mc.submit_transaction(CertificateTx(wcert=certificate))
            except ZendooError:
                pass
        self.ledger.start_new_epoch()
        self.current_epoch = epoch_id + 1

    # -- ceased exits ----------------------------------------------------------------------

    def make_csw(self, receiver: bytes, amount: int) -> CeasedSidechainWithdrawal:
        """Federation-authorized exit from a ceased sidechain.

        The nullifier is a deterministic counter-based tag so the federation
        can authorize each exit exactly once.
        """
        self._exit_counter += 1
        material = (
            Encoder()
            .raw(self.ledger_id)
            .var_bytes(receiver)
            .u64(amount)
            .u64(self._exit_counter)
            .done()
        )
        nullifier = hash_bytes(material, b"federated/nullifier")
        message = exit_message(self.ledger_id, receiver, amount, nullifier)
        witness = FederatedCswWitness(
            ledger_id=self.ledger_id,
            receiver=receiver,
            amount=amount,
            nullifier=nullifier,
            signatures=collect_signatures(self.member_keys, message),
        )
        entry = self.mc.state.cctp.entry(self.ledger_id)
        draft = CeasedSidechainWithdrawal(
            ledger_id=self.ledger_id,
            receiver=receiver,
            amount=amount,
            nullifier=nullifier,
            proofdata=(),
            proof=proving.Proof(data=bytes(proving.PROOF_SIZE)),
        )
        public_input = draft.public_input(entry.last_cert_block_hash)
        proof = proving.prove(self._csw_pk, public_input, witness)
        return CeasedSidechainWithdrawal(
            ledger_id=self.ledger_id,
            receiver=receiver,
            amount=amount,
            nullifier=nullifier,
            proofdata=(),
            proof=proof,
        )
