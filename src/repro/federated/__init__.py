"""A federated (non-blockchain) sidechain on the same CCTP.

Demonstrates the paper's decoupling claim: the mainchain verifies this
sidechain's certificates through exactly the same interface as Latus's,
yet the statement behind them is a ``t``-of-``n`` federation quorum over an
account ledger instead of a recursive state-transition proof.
"""

from repro.federated.circuits import (
    Federation,
    FederatedCswCircuit,
    FederatedCswWitness,
    FederatedWCertCircuit,
    FederatedWCertWitness,
    certificate_message,
    collect_signatures,
    exit_message,
)
from repro.federated.ledger import (
    AccountLedger,
    AccountTransfer,
    WithdrawalRequest,
    sign_transfer,
    sign_withdrawal_request,
)
from repro.federated.node import (
    FederatedNode,
    federated_sidechain_config,
    federation_from_seeds,
)

__all__ = [
    "AccountLedger",
    "AccountTransfer",
    "FederatedCswCircuit",
    "FederatedCswWitness",
    "FederatedNode",
    "FederatedWCertCircuit",
    "FederatedWCertWitness",
    "Federation",
    "WithdrawalRequest",
    "certificate_message",
    "collect_signatures",
    "exit_message",
    "federated_sidechain_config",
    "federation_from_seeds",
    "sign_transfer",
    "sign_withdrawal_request",
]
