"""An account-based ledger for the federated sidechain.

The paper stresses that "the sidechain may not even be a blockchain but can
be any system that uses the standardized method to communicate with the
mainchain" (§1).  This ledger is exactly that: a replicated account
database with no blocks, no consensus and no UTXOs — transfers apply the
moment the federation accepts them.  Only the CCTP surface (deposits from
forward transfers, a withdrawal queue drained by certificates, a state
digest the certificates commit to) matches Latus.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.transfers import BackwardTransfer
from repro.crypto.field import element_from_bytes
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair, address_of
from repro.crypto.mimc import mimc_hash
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.errors import StateTransitionError


@dataclass(frozen=True)
class AccountTransfer:
    """A signed account-to-account transfer.

    ``sequence`` is the sender's strictly-increasing transfer counter —
    the replay protection an account model needs instead of UTXO spending.
    """

    sender_pubkey: PublicKey
    receiver: bytes
    amount: int
    sequence: int
    signature: Signature

    @property
    def sender(self) -> bytes:
        """The sender's address."""
        return address_of(self.sender_pubkey)

    def signed_payload(self) -> bytes:
        """The byte string the signature covers."""
        return (
            Encoder()
            .var_bytes(self.sender_pubkey.to_bytes())
            .var_bytes(self.receiver)
            .u64(self.amount)
            .u64(self.sequence)
            .done()
        )

    @cached_property
    def txid(self) -> bytes:
        """The transfer id."""
        return hash_bytes(self.signed_payload(), b"federated/transfer")

    def verify_signature(self) -> bool:
        """True when the sender authorized this transfer."""
        return self.sender_pubkey.verify(
            hash_bytes(self.signed_payload(), b"federated/transfer-sig"),
            self.signature,
        )


def sign_transfer(
    sender: KeyPair, receiver: bytes, amount: int, sequence: int
) -> AccountTransfer:
    """Build and sign an :class:`AccountTransfer`."""
    draft = AccountTransfer(
        sender_pubkey=sender.public,
        receiver=receiver,
        amount=amount,
        sequence=sequence,
        signature=Signature(e=1, s=1),
    )
    signature = sender.sign(
        hash_bytes(draft.signed_payload(), b"federated/transfer-sig")
    )
    return AccountTransfer(
        sender_pubkey=sender.public,
        receiver=receiver,
        amount=amount,
        sequence=sequence,
        signature=signature,
    )


@dataclass(frozen=True)
class WithdrawalRequest:
    """A signed request to move coins back to the mainchain."""

    sender_pubkey: PublicKey
    mc_receiver: bytes
    amount: int
    sequence: int
    signature: Signature

    @property
    def sender(self) -> bytes:
        return address_of(self.sender_pubkey)

    def signed_payload(self) -> bytes:
        return (
            Encoder()
            .var_bytes(self.sender_pubkey.to_bytes())
            .var_bytes(self.mc_receiver)
            .u64(self.amount)
            .u64(self.sequence)
            .done()
        )

    def verify_signature(self) -> bool:
        return self.sender_pubkey.verify(
            hash_bytes(self.signed_payload(), b"federated/withdraw-sig"),
            self.signature,
        )


def sign_withdrawal_request(
    sender: KeyPair, mc_receiver: bytes, amount: int, sequence: int
) -> WithdrawalRequest:
    """Build and sign a :class:`WithdrawalRequest`."""
    draft = WithdrawalRequest(
        sender_pubkey=sender.public,
        mc_receiver=mc_receiver,
        amount=amount,
        sequence=sequence,
        signature=Signature(e=1, s=1),
    )
    signature = sender.sign(
        hash_bytes(draft.signed_payload(), b"federated/withdraw-sig")
    )
    return WithdrawalRequest(
        sender_pubkey=sender.public,
        mc_receiver=draft.mc_receiver,
        amount=draft.amount,
        sequence=draft.sequence,
        signature=signature,
    )


class AccountLedger:
    """Balances plus per-account sequence numbers and a withdrawal queue."""

    def __init__(self) -> None:
        self._balances: dict[bytes, int] = {}
        self._sequences: dict[bytes, int] = {}
        self.pending_withdrawals: list[BackwardTransfer] = []
        self.operations_applied = 0

    # -- queries -----------------------------------------------------------------

    def balance_of(self, addr: bytes) -> int:
        """Current balance of an account (0 when absent)."""
        return self._balances.get(addr, 0)

    def sequence_of(self, addr: bytes) -> int:
        """Next expected sequence number for an account."""
        return self._sequences.get(addr, 0)

    def total_supply(self) -> int:
        """Sum of all balances."""
        return sum(self._balances.values())

    def digest(self) -> int:
        """A field-element commitment to the full ledger state.

        MiMC over the sorted (address, balance, sequence) triples plus the
        queued withdrawals — what the federation's certificates commit to.
        """
        elements: list[int] = []
        for addr in sorted(self._balances):
            elements.append(element_from_bytes(addr))
            elements.append(self._balances[addr])
            elements.append(self._sequences.get(addr, 0))
        for bt in self.pending_withdrawals:
            elements.append(element_from_bytes(bt.receiver_addr))
            elements.append(bt.amount)
        return mimc_hash(elements)

    # -- mutations ----------------------------------------------------------------

    def deposit(self, addr: bytes, amount: int) -> None:
        """Credit a forward transfer."""
        if amount <= 0:
            raise StateTransitionError("deposit must be positive")
        self._balances[addr] = self._balances.get(addr, 0) + amount
        self.operations_applied += 1

    def apply_transfer(self, transfer: AccountTransfer) -> None:
        """Apply a signed transfer; raises on any invalidity."""
        if not transfer.verify_signature():
            raise StateTransitionError("bad transfer signature")
        if transfer.amount <= 0:
            raise StateTransitionError("transfer amount must be positive")
        sender = transfer.sender
        if transfer.sequence != self.sequence_of(sender):
            raise StateTransitionError(
                f"bad sequence {transfer.sequence}, expected {self.sequence_of(sender)}"
            )
        if self.balance_of(sender) < transfer.amount:
            raise StateTransitionError("insufficient balance")
        self._balances[sender] -= transfer.amount
        if not self._balances[sender]:
            del self._balances[sender]
        self._balances[transfer.receiver] = (
            self._balances.get(transfer.receiver, 0) + transfer.amount
        )
        self._sequences[sender] = transfer.sequence + 1
        self.operations_applied += 1

    def apply_withdrawal(self, request: WithdrawalRequest) -> None:
        """Queue a withdrawal for the next certificate; raises on invalidity."""
        if not request.verify_signature():
            raise StateTransitionError("bad withdrawal signature")
        if request.amount <= 0:
            raise StateTransitionError("withdrawal amount must be positive")
        sender = request.sender
        if request.sequence != self.sequence_of(sender):
            raise StateTransitionError(
                f"bad sequence {request.sequence}, expected {self.sequence_of(sender)}"
            )
        if self.balance_of(sender) < request.amount:
            raise StateTransitionError("insufficient balance")
        self._balances[sender] -= request.amount
        if not self._balances[sender]:
            del self._balances[sender]
        self._sequences[sender] = request.sequence + 1
        self.pending_withdrawals.append(
            BackwardTransfer(receiver_addr=request.mc_receiver, amount=request.amount)
        )
        self.operations_applied += 1

    def start_new_epoch(self) -> None:
        """Drain the withdrawal queue (it rode out in the certificate)."""
        self.pending_withdrawals = []

    def copy(self) -> "AccountLedger":
        """Independent snapshot."""
        clone = AccountLedger()
        clone._balances = dict(self._balances)
        clone._sequences = dict(self._sequences)
        clone.pending_withdrawals = list(self.pending_withdrawals)
        clone.operations_applied = self.operations_applied
        return clone
