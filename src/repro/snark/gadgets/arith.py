"""Arithmetic gadgets: 64-bit amounts, conservation, comparisons.

Coin amounts throughout the protocol are 64-bit unsigned integers embedded
in the field.  Field arithmetic wraps modulo ``p``, so every amount that
enters a conservation equation must be range-checked to prevent overflow
forgeries — exactly the discipline real SNARK circuits need.
"""

from __future__ import annotations

from typing import Sequence

from repro.snark.circuit import CircuitBuilder, Wire

#: Bit width of a coin amount.
AMOUNT_BITS: int = 64


def alloc_amount(builder: CircuitBuilder, value: int) -> Wire:
    """Allocate a wire range-checked to be a valid 64-bit amount."""
    wire = builder.alloc(value)
    builder.enforce_range(wire, AMOUNT_BITS, "amount/range")
    return wire


def enforce_conservation(
    builder: CircuitBuilder,
    inputs: Sequence[Wire],
    outputs: Sequence[Wire],
    annotation: str = "conservation",
) -> None:
    """Enforce ``sum(inputs) == sum(outputs)`` over range-checked amounts.

    With all amounts < 2**64 and realistic list sizes, the field sums cannot
    wrap, so field equality equals integer equality.
    """
    builder.enforce_equal(builder.sum(inputs), builder.sum(outputs), annotation)


def enforce_less_or_equal(
    builder: CircuitBuilder, a: Wire, b: Wire, num_bits: int = AMOUNT_BITS
) -> Wire:
    """Enforce ``a <= b`` for range-checked values; returns the ``b - a`` wire.

    Works by range-checking the difference: ``b - a`` fits in ``num_bits``
    bits iff no borrow occurred (given both operands are themselves
    ``num_bits``-bit values).
    """
    difference = builder.sub(b, a)
    builder.enforce_range(difference, num_bits, "leq/diff-range")
    return difference


def enforce_sum_with_fee(
    builder: CircuitBuilder,
    inputs: Sequence[Wire],
    outputs: Sequence[Wire],
) -> Wire:
    """Enforce ``sum(inputs) >= sum(outputs)``; returns the fee wire.

    The paper's payment rule (§5.3.1): input total may exceed output total;
    the slack is the (implicit) fee.
    """
    total_in = builder.sum(inputs)
    total_out = builder.sum(outputs)
    return enforce_less_or_equal(builder, total_out, total_in, AMOUNT_BITS + 8)
