"""R1CS gadget mirroring the MiMC permutation round-for-round.

Each round enforces ``t = r + k + c_i`` (linear, free) and the exponent-5
power map via three multiplications (``t2 = t*t``, ``t4 = t2*t2``,
``r' = t4*t``), exactly matching :func:`repro.crypto.mimc.mimc_permutation`.
A two-to-one compression therefore costs ``3 * ROUNDS`` constraints, which is
the dominant cost driver of Merkle-path circuits (bench Q5).

The native side is an exec-compiled unrolled permutation (see
docs/PERFORMANCE.md); this gadget is the constraint-level specification it
must stay faithful to.  The randomized parity sweep in
``tests/test_mimc.py::TestGadgetNativeParity`` enforces the agreement, so
any change to the round structure here must be mirrored in
:mod:`repro.crypto.mimc` and vice versa.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.mimc import ROUND_CONSTANTS
from repro.snark.circuit import CircuitBuilder, Wire


def mimc_permutation_gadget(builder: CircuitBuilder, x: Wire, k: Wire) -> Wire:
    """Enforce the keyed MiMC permutation; returns the output wire.

    On the template evaluation path (:class:`repro.snark.compile.EvaluationBuilder`)
    the whole permutation may evaluate *fused* — one memoized straight-line
    call producing the identical 330 witness values — when the active field
    backend advertises batched evaluation.  The eager builder (and the
    evaluation builder under the default backend) takes the op-for-op loop
    below, which is the constraint-level specification the fused path must
    stay byte-identical to.
    """
    fused = getattr(builder, "mimc_permutation_fused", None)
    if fused is not None:
        out = fused(x, k)
        if out is not None:
            return out
    r = x
    for constant in ROUND_CONSTANTS:
        t = builder.add(builder.add(r, k), builder.constant(constant))
        t2 = builder.square(t, "mimc/t2")
        t4 = builder.square(t2, "mimc/t4")
        r = builder.mul(t4, t, "mimc/t5")
    return builder.add(r, k)


def mimc_compress_gadget(builder: CircuitBuilder, left: Wire, right: Wire) -> Wire:
    """Enforce Miyaguchi–Preneel compression ``E_r(l) + l + r``."""
    permuted = mimc_permutation_gadget(builder, left, right)
    return builder.add(builder.add(permuted, left), right)


def mimc_hash_gadget(builder: CircuitBuilder, elements: Sequence[Wire]) -> Wire:
    """Enforce the chained MiMC hash over a sequence of wires.

    Mirrors :func:`repro.crypto.mimc.mimc_hash` (length-tagged
    Miyaguchi–Preneel chain).
    """
    state = mimc_compress_gadget(
        builder, builder.constant(0), builder.constant(len(elements))
    )
    for element in elements:
        state = mimc_compress_gadget(builder, state, element)
    return state
