"""Reusable R1CS gadgets: MiMC, Merkle paths, amount arithmetic."""

from repro.snark.gadgets.arith import (
    AMOUNT_BITS,
    alloc_amount,
    enforce_conservation,
    enforce_less_or_equal,
    enforce_sum_with_fee,
)
from repro.snark.gadgets.merkle import enforce_merkle_membership, merkle_path_gadget
from repro.snark.gadgets.mimc import (
    mimc_compress_gadget,
    mimc_hash_gadget,
    mimc_permutation_gadget,
)

__all__ = [
    "AMOUNT_BITS",
    "alloc_amount",
    "enforce_conservation",
    "enforce_less_or_equal",
    "enforce_merkle_membership",
    "enforce_sum_with_fee",
    "merkle_path_gadget",
    "mimc_compress_gadget",
    "mimc_hash_gadget",
    "mimc_permutation_gadget",
]
