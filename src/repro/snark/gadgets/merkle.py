"""Merkle-path verification gadget over the fixed-depth field tree.

Proves in-circuit that a leaf wire opens to a root wire along an
authentication path — the core of the Latus BTR/CSW circuits (§5.5.3.2) and
of the MST-transition checks.  Per level: one boolean constraint for the
direction bit, two select constraints to order (node, sibling), and one MiMC
compression (3 * ROUNDS constraints).
"""

from __future__ import annotations

from repro.crypto.fixed_merkle import FieldMerkleProof
from repro.snark.circuit import CircuitBuilder, Wire
from repro.snark.gadgets.mimc import mimc_compress_gadget


def merkle_path_gadget(
    builder: CircuitBuilder,
    leaf: Wire,
    path_bits: list[Wire],
    siblings: list[Wire],
) -> Wire:
    """Recompute the root from ``leaf`` along the path; returns the root wire.

    ``path_bits[i]`` must be boolean-constrained already (1 = node is the
    right child at level ``i``); ``siblings[i]`` is the sibling wire at that
    level.
    """
    node = leaf
    for bit, sibling in zip(path_bits, siblings):
        left, right = builder.swap_if(bit, node, sibling)
        node = mimc_compress_gadget(builder, left, right)
    return node


def enforce_merkle_membership(
    builder: CircuitBuilder,
    proof: FieldMerkleProof,
    root: Wire,
    leaf: Wire | None = None,
) -> Wire:
    """Allocate a witness Merkle proof and enforce it opens to ``root``.

    When ``leaf`` is given it is used as the proven leaf wire (tying it to
    other parts of the circuit); otherwise the leaf value from ``proof`` is
    allocated as a fresh witness.  Returns the leaf wire.
    """
    if leaf is None:
        leaf = builder.alloc(proof.leaf)
    path_bits = [
        builder.alloc_bit((proof.position >> i) & 1) for i in range(proof.depth)
    ]
    siblings = [builder.alloc(s) for s in proof.siblings]
    computed_root = merkle_path_gadget(builder, leaf, path_bits, siblings)
    builder.enforce_equal(computed_root, root, "merkle/root")
    return leaf
