"""The SNARK proving system: ``(Setup, Prove, Verify)`` (paper Def. 2.3).

SUBSTITUTION NOTICE (see DESIGN.md §4).  Python has no production zk-SNARK
proving stack, and the paper itself defers the concrete SNARK construction
to a separate publication.  This module therefore implements a **simulated
proving layer over a real arithmetization**:

* The arithmetization is real.  ``Prove`` synthesizes the full R1CS for the
  statement and evaluates *every* constraint against the witness; any
  unsatisfied constraint aborts proving with
  :class:`~repro.errors.UnsatisfiedConstraint`.  Constraint counts reported
  in proving statistics are genuine.
* The proof object is simulated.  Instead of a pairing-based argument, the
  proof is a constant-size keyed binding tag over
  ``(verification key id, circuit digest, public input)``.  ``Verify``
  recomputes the tag in O(1).

Properties preserved (the ones the protocol relies on):

* **Completeness** — a satisfying witness always yields an accepting proof.
* **Knowledge soundness (within the process model)** — a valid tag can only
  be produced via ``Prove``, which refuses non-satisfying witnesses; flipping
  any byte of the proof, the public input, or using the wrong key rejects.
* **Succinctness** — proof size is a constant :data:`PROOF_SIZE` bytes and
  verification is constant-time, independent of circuit size.
* **Cost shape** — proving time scales with the number of constraints;
  verification time does not.

Properties **not** preserved: zero-knowledge in the cryptographic sense, and
public verifiability against an adversary who extracts the binding key from
a verification key object.  Neither is exercised by the protocol logic.
"""

from __future__ import annotations

import hashlib
import hmac
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro import observability
from repro.crypto.field import MODULUS
from repro.errors import SnarkError, VerificationFailure
from repro.snark import compile as snark_compile
from repro.snark.circuit import Circuit
from repro.snark.r1cs import R1CSStats

_TRACER = observability.tracer()
_REGISTRY = observability.registry()
_BATCH_VERIFICATIONS = _REGISTRY.counter(
    "repro_snark_batch_verify_total",
    "proofs checked through batched verification entry points, by result",
    labelnames=("result",),
)

#: Constant size, in bytes, of every proof produced by this system.
PROOF_SIZE: int = 96

_SETUP_DOMAIN = b"zendoo/snark-setup"
_TAG_DOMAIN = b"zendoo/snark-tag"


def _digest_public_input(public_input: Sequence[int]) -> bytes:
    h = hashlib.blake2b(digest_size=32, person=b"zendoo/snark-pub")
    h.update(len(public_input).to_bytes(4, "little"))
    for value in public_input:
        h.update((value % MODULUS).to_bytes(32, "little"))
    return h.digest()


@dataclass(frozen=True)
class VerifyingKey:
    """The verifier half of a SNARK key pair.

    ``key_id`` identifies the bootstrapped circuit family; ``binding_key`` is
    the simulation's stand-in for the structured reference string.
    """

    circuit_id: str
    key_id: bytes
    binding_key: bytes

    def to_bytes(self) -> bytes:
        """Canonical serialization (used when registering keys on the MC)."""
        cid = self.circuit_id.encode()
        return (
            len(cid).to_bytes(2, "little") + cid + self.key_id + self.binding_key
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "VerifyingKey":
        """Inverse of :meth:`to_bytes`."""
        n = int.from_bytes(data[:2], "little")
        cid = data[2 : 2 + n].decode()
        rest = data[2 + n :]
        if len(rest) != 64:
            raise SnarkError("malformed verifying key")
        return cls(circuit_id=cid, key_id=rest[:32], binding_key=rest[32:])


@dataclass(frozen=True)
class ProvingKey:
    """The prover half: carries the circuit itself plus the binding key."""

    circuit: Circuit
    verifying_key: VerifyingKey


@dataclass(frozen=True)
class Proof:
    """A constant-size proof object.

    ``data`` is :data:`PROOF_SIZE` bytes: 32 bytes of key id followed by a
    64-byte binding tag.  The size never depends on the statement.
    """

    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) != PROOF_SIZE:
            raise SnarkError(f"proof must be {PROOF_SIZE} bytes, got {len(self.data)}")

    @property
    def size_bytes(self) -> int:
        """Proof size in bytes (constant)."""
        return len(self.data)

    def to_bytes(self) -> bytes:
        """Canonical serialization."""
        return self.data

    @classmethod
    def from_bytes(cls, data: bytes) -> "Proof":
        """Inverse of :meth:`to_bytes`."""
        return cls(data=data)


@dataclass(frozen=True)
class ProveResult:
    """A proof together with the statistics of the synthesis that produced it.

    ``via_template`` records whether the synthesis ran through a cached
    constraint template (:mod:`repro.snark.compile`) rather than the full
    eager builder; it travels with the result across process boundaries, so
    pool-dispatched proofs are attributable even though the template-cache
    counters live per worker process.
    """

    proof: Proof
    stats: R1CSStats
    prove_seconds: float
    via_template: bool = False


def setup(circuit: Circuit) -> tuple[ProvingKey, VerifyingKey]:
    """Bootstrap the SNARK for ``circuit`` — the paper's ``Setup(C, 1^λ)``.

    Deterministic in the circuit identity so that independently-bootstrapped
    nodes agree on keys; the derived ``binding_key`` plays the role of the
    reference string.
    """
    if not circuit.circuit_id:
        raise SnarkError("circuit must define a stable circuit_id")
    seed = hashlib.blake2b(
        circuit.circuit_id.encode() + b"\x00" + circuit.parameters_digest(),
        digest_size=32,
        person=_SETUP_DOMAIN[:16],
    ).digest()
    key_id = hashlib.blake2b(seed, digest_size=32, person=b"zendoo/key-id").digest()
    binding_key = hashlib.blake2b(seed, digest_size=32, person=b"zendoo/bind-key").digest()
    vk = VerifyingKey(circuit_id=circuit.circuit_id, key_id=key_id, binding_key=binding_key)
    return ProvingKey(circuit=circuit, verifying_key=vk), vk


def _binding_tag(vk: VerifyingKey, public_digest: bytes) -> bytes:
    h = hashlib.blake2b(
        digest_size=64, key=vk.binding_key, person=_TAG_DOMAIN[:16]
    )
    h.update(vk.key_id)
    h.update(public_digest)
    return h.digest()


def prove(pk: ProvingKey, public_input: Sequence[int], witness: Any) -> Proof:
    """Produce a proof — the paper's ``Prove(pk, a, w)``.

    Synthesizes the circuit, checking every constraint; raises
    :class:`~repro.errors.UnsatisfiedConstraint` if ``(a, w)`` is not a
    satisfying assignment.
    """
    return prove_with_stats(pk, public_input, witness).proof


def prove_with_stats(
    pk: ProvingKey, public_input: Sequence[int], witness: Any
) -> ProveResult:
    """Like :func:`prove` but also returns synthesis statistics and timing."""
    started = time.perf_counter()
    stats, via_template = snark_compile.synthesize_for_proof(
        pk.circuit, public_input, witness
    )
    tag = _binding_tag(pk.verifying_key, _digest_public_input(public_input))
    proof = Proof(data=pk.verifying_key.key_id + tag)
    return ProveResult(
        proof=proof,
        stats=stats,
        prove_seconds=time.perf_counter() - started,
        via_template=via_template,
    )


def prove_many(
    pk: ProvingKey, jobs: Sequence[tuple[Sequence[int], Any]]
) -> list[ProveResult]:
    """Prove a batch of same-key statements under one ``snark/batched_eval`` span.

    ``jobs`` is a sequence of ``(public_input, witness)`` pairs.  Results are
    positionally identical to a loop of :func:`prove_with_stats` calls — this
    is the chunk entry point :class:`~repro.snark.pool.ProverPool` workers
    use, and the batching benefit is *cross-witness*: consecutive witnesses
    of one chunk share template checkers and (under the batched field
    backend) the fused-permutation memo, so the second and later proofs of a
    chunk skip most of the MiMC work the first one paid for.
    """
    if not jobs:
        return []
    with _TRACER.span(
        "snark/batched_eval", circuit=pk.circuit.circuit_id, jobs=len(jobs)
    ):
        return [prove_with_stats(pk, public_input, witness) for public_input, witness in jobs]


def verify(vk: VerifyingKey, public_input: Sequence[int], proof: Proof) -> bool:
    """Verify a proof — the paper's ``Verify(vk, a, π)``.

    Constant-time: one keyed hash over the (fixed-size) public input digest,
    regardless of how large the proven statement was.
    """
    if proof.data[:32] != vk.key_id:
        return False
    expected = _binding_tag(vk, _digest_public_input(public_input))
    return _constant_time_eq(proof.data[32:], expected)


def verify_many(
    jobs: Sequence[tuple[VerifyingKey, Sequence[int], Proof]]
) -> list[bool]:
    """Verify a batch of (possibly different-key) proofs in one pass.

    ``jobs`` is a sequence of ``(vk, public_input, proof)`` triples; the
    result is positionally identical to a loop of :func:`verify` calls.
    This is the serial fallback of
    :meth:`repro.snark.pool.ProverPool.map_verify` and the chunk body its
    workers run.  Every verdict is counted on
    ``repro_snark_batch_verify_total{result}``.
    """
    if not jobs:
        return []
    with _TRACER.span("snark/batched_verify", jobs=len(jobs)):
        results = [verify(vk, public_input, proof) for vk, public_input, proof in jobs]
    count_batch_verdicts(results)
    return results


def count_batch_verdicts(results: Sequence[bool]) -> None:
    """Record batch-verification verdicts on the observability counter.

    Split out so :class:`repro.snark.pool.ProverPool` can count results it
    gathered from worker processes (whose own registries are invisible to
    the parent).
    """
    accepted = sum(results)
    if accepted:
        _BATCH_VERIFICATIONS.labels(result="valid").inc(accepted)
    if accepted < len(results):
        _BATCH_VERIFICATIONS.labels(result="invalid").inc(len(results) - accepted)


def expect_valid(vk: VerifyingKey, public_input: Sequence[int], proof: Proof) -> None:
    """Raise :class:`VerificationFailure` unless the proof verifies."""
    if not verify(vk, public_input, proof):
        raise VerificationFailure(
            f"proof for circuit '{vk.circuit_id}' failed verification"
        )


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    """Timing-safe tag comparison, delegated to :func:`hmac.compare_digest`.

    The C implementation is both genuinely constant-time (a Python-level
    byte loop leaks through interpreter dispatch) and an order of magnitude
    faster on the 64-byte tags compared here.
    """
    return hmac.compare_digest(a, b)
