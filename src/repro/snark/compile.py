"""Compile-once constraint templates for the proving hot path.

Every ``prove()`` call used to re-synthesize its circuit from scratch:
:class:`~repro.snark.circuit.CircuitBuilder` rebuilds sparse
``LinearCombination`` dicts, allocates a ``Wire`` per gadget output and
eagerly evaluates each constraint — even though the constraint *structure*
of a circuit family (fixed-depth MST paths, fixed MiMC round count, Def.
2.3) is identical across proofs and only the assignment changes.  Real
SNARK stacks preprocess exactly this invariant into the proving key; this
module does the Python equivalent.

The first synthesis of a ``(circuit_id, parameters_digest)`` family runs
through the ordinary eager builder with constraint retention and records a
:class:`ConstraintTemplate`: flattened sparse A/B/C term arrays (tuples of
``(variable, coefficient)`` per constraint), the public-wire layout and the
allocation/constraint/native-check counts.  Subsequent proofs for the same
family run the circuit's ``synthesize()`` through an
:class:`EvaluationBuilder` whose wires are bare values backed by a flat
assignment list — no LC dict merging, no ``Constraint`` objects, no per-op
eager checks — and satisfiability is then checked in one batched streaming
pass ``<A_i, z> * <B_i, z> == <C_i, z>`` over the cached arrays.

**Structural guard.**  A template is only applied when the traced shape —
allocation count, constraint count, native-check count and public-wire
layout — matches one recorded for the family.  Circuits whose shape
legitimately varies with the witness (the Latus base circuit branches on
the transaction type, the WCert circuit on the epoch-0 boundary) get one
template per observed shape, up to :data:`MAX_TEMPLATES_PER_FAMILY`;
beyond that the family is considered shape-shifting and **permanently
falls back** to full synthesis, counted on
``repro_snark_template_fallbacks_total``.  Any divergence the counters
cannot see (a batched-pass failure or evaluation error that full synthesis
does not reproduce) likewise trips the permanent fallback, so the fast
path can only ever cost one redundant synthesis — never a wrong result.

**Failure fidelity.**  Native checks run eagerly during evaluation (they
are genuine witness predicates, not arithmetized structure).  When one
fails, or when the batched pass finds an unsatisfied constraint, the proof
is re-synthesized on the canonical slow path so the raised
:class:`~repro.errors.UnsatisfiedConstraint` carries exactly the
annotation and ordering the eager builder would have produced.  Rejection
is the exceptional case; honest proving never pays the rerun.

Disable globally with ``REPRO_SNARK_TEMPLATES=0`` in the environment, or
per-scope with :func:`use_templates` / :func:`set_enabled` (what the
equivalence tests and the synthesis-vs-evaluation benchmarks use).

**Batched evaluation (the ``batched`` field backend).**  When the active
field backend (:mod:`repro.crypto.backend`) advertises ``batched_eval``,
two further accelerations switch on, both exact:

* the MiMC permutation gadget evaluates *fused*: one exec-compiled
  straight-line function produces all 330 per-round product values of a
  permutation in a single call (memoized on ``(x, k)`` in a bounded FIFO,
  so the shared prefixes of Miyaguchi–Preneel hash chains — same state,
  same leading elements — replay as one dict hit and a list ``extend``).
  The appended values are byte-identical to the unfused replay: ``t2`` and
  ``t4`` are free byproducts of computing each round's output;
* the template checker verifies only *refutable* constraints.  Product
  definitions from ``mul``/``square`` (flagged ``computed`` at enforcement,
  see :class:`repro.snark.r1cs.Constraint`) assign their C variable exactly
  the A·B product, so on any assignment produced by the synthesis trace
  they hold by construction and checking them cannot change acceptance.
  Booleanity, nonzero, select, equality and recomposition rows — the ones
  a bad witness actually violates — are still checked row-for-row, and a
  rejection still re-runs the canonical eager path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro import observability
from repro.crypto import backend as field_backend
from repro.crypto.field import MODULUS, inv
from repro.crypto.mimc import ROUND_CONSTANTS
from repro.errors import SynthesisError
from repro.snark.circuit import Circuit, CircuitBuilder, _validate_publics
from repro.snark.r1cs import R1CSStats

#: Distinct witness shapes cached per circuit family before the family is
#: declared shape-shifting and permanently falls back to full synthesis.
MAX_TEMPLATES_PER_FAMILY: int = 8

_REGISTRY = observability.registry()
_TRACER = observability.tracer()
_COMPILES = _REGISTRY.counter(
    "repro_snark_template_compiles_total",
    "constraint templates recorded from a full synthesis",
).labels()
_HITS = _REGISTRY.counter(
    "repro_snark_template_hits_total",
    "proofs synthesized through a cached constraint template",
).labels()
_MISSES = _REGISTRY.counter(
    "repro_snark_template_misses_total",
    "proofs that found no usable template and compiled one",
).labels()
_FALLBACKS = _REGISTRY.counter(
    "repro_snark_template_fallbacks_total",
    "proofs forced onto full synthesis by the structural guard",
).labels()
_FUSED_HITS = _REGISTRY.counter(
    "repro_field_fused_permutation_hits_total",
    "fused MiMC gadget evaluations served from the permutation memo",
).labels()
_FUSED_MISSES = _REGISTRY.counter(
    "repro_field_fused_permutation_misses_total",
    "fused MiMC gadget evaluations computed from scratch",
).labels()

_ENABLED_AT_IMPORT = os.environ.get("REPRO_SNARK_TEMPLATES", "1") not in (
    "0",
    "false",
    "off",
)

#: Family key -> shape key -> template.  A family is one Setup identity.
_FAMILIES: dict[tuple[str, bytes], dict[tuple, "ConstraintTemplate"]] = {}
#: Families the structural guard has permanently retired from the fast path.
_FALLEN_BACK: set[tuple[str, bytes]] = set()
_enabled: bool = _ENABLED_AT_IMPORT


# -- the template --------------------------------------------------------------

#: One flattened constraint: sparse A/B/C term tuples, the annotation, and
#: the validated ``computed`` provenance flag (True only for product
#: definitions whose C side is a single bare fresh variable).
_FlatConstraint = tuple[
    tuple[tuple[int, int], ...],
    tuple[tuple[int, int], ...],
    tuple[tuple[int, int], ...],
    str,
    bool,
]


@dataclass(frozen=True)
class ConstraintTemplate:
    """The compile-once structure of one circuit family shape.

    Everything the batched satisfiability pass needs, with no live
    ``LinearCombination`` or ``Constraint`` objects: variables are bare
    indices into the flat assignment vector (``z[0] == 1``).
    """

    circuit_id: str
    parameters_digest: bytes
    num_variables: int
    num_constraints: int
    num_native_checks: int
    public_indices: tuple[int, ...]
    constraints: tuple[_FlatConstraint, ...]

    @property
    def shape_key(self) -> tuple:
        """The structural-guard identity this template answers to."""
        return (
            self.num_variables,
            self.num_constraints,
            self.num_native_checks,
            self.public_indices,
        )

    def stats(self) -> R1CSStats:
        """The R1CS statistics every proof of this shape reports."""
        return R1CSStats(
            num_constraints=self.num_constraints,
            num_variables=self.num_variables,
            num_public_inputs=len(self.public_indices),
            num_native_checks=self.num_native_checks,
        )


# -- fused MiMC permutation for the evaluation path ------------------------------


def _compile_fused_permutation(
    constants: Sequence[int], modulus: int
) -> Callable[[int, int], tuple[int, ...]]:
    """Exec-compile the straight-line producer of a permutation's witness slots.

    One call computes every per-round product value (``t2``, ``t4``, ``r``;
    three per round) that the unfused gadget would append through 330
    individual ``square``/``mul`` calls.  ``t2`` and ``t4`` are byproducts of
    computing the round output anyway, so the returned tuple is byte-identical
    to the unfused replay — fusing removes Python call dispatch and
    ``EvalWire`` boxing, not arithmetic.  The permutation output is
    ``(slots[-1] + k) % p``.
    """
    lines = [f"def _fused(r, k, _M={modulus}):", "    s = []", "    a = s.append"]
    for c in constants:
        if c:
            lines.append(f"    t = (r + k + {c}) % _M")
        else:
            lines.append("    t = (r + k) % _M")
        lines.append("    t2 = t * t % _M")
        lines.append("    a(t2)")
        lines.append("    t4 = t2 * t2 % _M")
        lines.append("    a(t4)")
        lines.append("    r = t4 * t % _M")
        lines.append("    a(r)")
    lines.append("    return tuple(s)")
    namespace: dict[str, Any] = {}
    exec(compile("\n".join(lines), "<snark-fused-permutation>", "exec"), namespace)
    return namespace["_fused"]


_fused_permutation: Callable[[int, int], tuple[int, ...]] = _compile_fused_permutation(
    ROUND_CONSTANTS, MODULUS
)

#: Maximum memoized ``(x, k) -> witness slots`` entries.  Each entry is 330
#: field ints (~12 KB), bounding the memo at ~12 MB; eviction is FIFO.  The
#: memo is what makes Miyaguchi–Preneel chain prefixes cheap: every proof of
#: an epoch re-hashes mostly-identical UTXO fields, so the bulk of gadget
#: permutations repeat (x, k) pairs already seen.
FUSED_MEMO_MAX_ENTRIES: int = 1024

_fused_memo: dict[tuple[int, int], tuple[int, ...]] = {}


# -- the evaluation-only builder -----------------------------------------------


class _EvalAbort(Exception):
    """Internal: a native check failed during template evaluation.

    Deliberately *not* an :class:`UnsatisfiedConstraint` — the canonical
    error (with eager ordering and annotation) is produced by re-running
    the slow path, so nothing outside this module may catch this one.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


class EvalWire:
    """An evaluation-path wire: just the concrete field value."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"EvalWire(value={self.value})"


class EvaluationBuilder:
    """Slim stand-in for :class:`CircuitBuilder` on the template fast path.

    Mirrors the eager builder's allocation and constraint *counting*
    op-for-op (the structural guard depends on it) while doing none of the
    linear-combination bookkeeping: wires carry only values, the assignment
    is a flat list, and arithmetic constraints are deferred to the batched
    template pass.  Native checks still run eagerly — they are witness
    predicates the template cannot capture.
    """

    __slots__ = (
        "assignment",
        "public_indices",
        "num_constraints",
        "num_native_checks",
        "_one",
        "_append",
        "_fused",
    )

    def __init__(self) -> None:
        self.assignment: list[int] = [1]  # z[0] == 1
        self.public_indices: list[int] = []
        self.num_constraints = 0
        self.num_native_checks = 0
        self._one = EvalWire(1)
        # bound once: the hot gadget loops append thousands of times per proof
        self._append = self.assignment.append
        # fused MiMC only under a batched_eval backend, so the default
        # backend replays gadgets op-for-op exactly as before
        self._fused = field_backend.active().batched_eval

    # -- allocation ----------------------------------------------------------

    @property
    def one(self) -> EvalWire:
        """The constant-one wire."""
        return self._one

    def constant(self, value: int) -> EvalWire:
        """A wire fixed to a field constant (costs no variable)."""
        return EvalWire(value % MODULUS)

    def alloc(self, value: int) -> EvalWire:
        """Allocate a private witness wire carrying ``value``."""
        v = value % MODULUS
        self._append(v)
        return EvalWire(v)

    def alloc_public(self, value: int) -> EvalWire:
        """Allocate a public-input wire carrying ``value``."""
        v = value % MODULUS
        self.public_indices.append(len(self.assignment))
        self.assignment.append(v)
        return EvalWire(v)

    def alloc_publics(self, values: Sequence[int]) -> list[EvalWire]:
        """Allocate a list of public-input wires."""
        return [self.alloc_public(v) for v in values]

    # -- linear ops (free: no constraints) -----------------------------------

    def add(self, a: EvalWire, b: EvalWire) -> EvalWire:
        return EvalWire((a.value + b.value) % MODULUS)

    def sub(self, a: EvalWire, b: EvalWire) -> EvalWire:
        return EvalWire((a.value - b.value) % MODULUS)

    def scale(self, a: EvalWire, scalar: int) -> EvalWire:
        return EvalWire(a.value * scalar % MODULUS)

    def sum(self, wires: Sequence[EvalWire]) -> EvalWire:
        total = 0
        for w in wires:
            total += w.value
        return EvalWire(total % MODULUS)

    # -- multiplicative ops (one deferred constraint each) ---------------------

    def mul(self, a: EvalWire, b: EvalWire, annotation: str = "mul") -> EvalWire:
        v = a.value * b.value % MODULUS
        self._append(v)
        self.num_constraints += 1
        return EvalWire(v)

    def square(self, a: EvalWire, annotation: str = "square") -> EvalWire:
        return self.mul(a, a, annotation)

    def enforce_equal(self, a: EvalWire, b: EvalWire, annotation: str = "eq") -> None:
        self.num_constraints += 1

    def enforce_zero(self, a: EvalWire, annotation: str = "zero") -> None:
        self.num_constraints += 1

    def enforce_boolean(self, a: EvalWire, annotation: str = "bool") -> None:
        self.num_constraints += 1

    def enforce_nonzero(self, a: EvalWire, annotation: str = "nonzero") -> None:
        value = a.value
        # mirror the eager builder: a bogus inverse for zero so the deferred
        # constraint fails with the canonical UnsatisfiedConstraint
        self._append(inv(value) if value else 0)
        self.num_constraints += 1

    # -- composite gadgets -----------------------------------------------------

    def alloc_bit(self, value: int) -> EvalWire:
        bit = self.alloc(value)
        self.num_constraints += 1
        return bit

    def decompose_bits(
        self, a: EvalWire, num_bits: int, annotation: str = "bits"
    ) -> list[EvalWire]:
        value = a.value
        append = self._append
        bits = []
        for i in range(num_bits):
            b = (value >> i) & 1
            append(b)
            bits.append(EvalWire(b))
        # one boolean constraint per bit plus the recomposition equality
        self.num_constraints += num_bits + 1
        return bits

    def enforce_range(
        self, a: EvalWire, num_bits: int, annotation: str = "range"
    ) -> None:
        self.decompose_bits(a, num_bits, annotation)

    def select(
        self, condition: EvalWire, if_true: EvalWire, if_false: EvalWire
    ) -> EvalWire:
        v = if_true.value if condition.value else if_false.value
        self._append(v)
        self.num_constraints += 1
        return EvalWire(v)

    def swap_if(
        self, condition: EvalWire, a: EvalWire, b: EvalWire
    ) -> tuple[EvalWire, EvalWire]:
        return self.select(condition, b, a), self.select(condition, a, b)

    def assert_native(self, condition: bool, message: str) -> None:
        self.num_native_checks += 1
        if not condition:
            raise _EvalAbort(message)

    def mimc_permutation_fused(self, x: EvalWire, k: EvalWire) -> EvalWire | None:
        """Evaluate a whole keyed MiMC permutation as one fused call.

        Returns ``None`` unless the active field backend advertises
        ``batched_eval`` — the gadget then falls through to its op-for-op
        loop.  When active, the 330 per-round witness values (identical to
        the unfused replay, see :func:`_compile_fused_permutation`) are
        appended in one ``extend`` and the allocation/constraint counters
        advance exactly as 110 rounds of ``square``/``square``/``mul``
        would, so the structural guard sees the same shape either way.
        """
        if not self._fused:
            return None
        key = (x.value, k.value)
        memo = _fused_memo
        slots = memo.get(key)
        if slots is None:
            _FUSED_MISSES.inc()
            slots = _fused_permutation(*key)
            if len(memo) >= FUSED_MEMO_MAX_ENTRIES:
                del memo[next(iter(memo))]
            memo[key] = slots
        else:
            _FUSED_HITS.inc()
        self.assignment.extend(slots)
        self.num_constraints += len(slots)
        return EvalWire((slots[-1] + key[1]) % MODULUS)

    # -- results -----------------------------------------------------------------

    def shape_key(self) -> tuple:
        """The structural identity of the just-traced synthesis."""
        return (
            len(self.assignment) - 1,
            self.num_constraints,
            self.num_native_checks,
            tuple(self.public_indices),
        )

    def public_values(self) -> tuple[int, ...]:
        """The values of all public-input wires, in allocation order."""
        assignment = self.assignment
        return tuple(assignment[i] for i in self.public_indices)

    def stats(self) -> R1CSStats:
        """Size statistics of everything traced so far."""
        return R1CSStats(
            num_constraints=self.num_constraints,
            num_variables=len(self.assignment) - 1,
            num_public_inputs=len(self.public_indices),
            num_native_checks=self.num_native_checks,
        )


# -- compilation and evaluation -------------------------------------------------


def family_key(circuit: Circuit) -> tuple[str, bytes]:
    """The template-cache key — same identity as ``setup()`` key derivation."""
    return (circuit.circuit_id, bytes(circuit.parameters_digest()))


def _full_synthesis(
    circuit: Circuit,
    public_input: Sequence[int],
    witness: Any,
    keep_constraints: bool = False,
) -> CircuitBuilder:
    builder = CircuitBuilder(keep_constraints=keep_constraints)
    circuit.synthesize(builder, public_input, witness)
    _validate_publics(builder, public_input)
    return builder


def _is_product_definition(constraint) -> bool:
    """Validate a ``computed`` flag before trusting it for checker skipping.

    The flag is honored only when the constraint's C side is a single bare
    non-ONE variable with coefficient 1 — the exact shape ``mul`` emits.
    Anything else (however it got flagged) is treated as refutable, so a
    mis-flagged constraint costs a redundant check, never a missed one.
    """
    if not constraint.computed:
        return False
    terms = constraint.c.terms
    if len(terms) != 1:
        return False
    ((var, coeff),) = terms.items()
    return var != 0 and coeff == 1


def _template_from(builder: CircuitBuilder, circuit: Circuit) -> ConstraintTemplate:
    cs = builder.cs
    flattened = tuple(
        (
            tuple(c.a.terms.items()),
            tuple(c.b.terms.items()),
            tuple(c.c.terms.items()),
            c.annotation,
            _is_product_definition(c),
        )
        for c in cs.constraints
    )
    return ConstraintTemplate(
        circuit_id=circuit.circuit_id,
        parameters_digest=bytes(circuit.parameters_digest()),
        num_variables=len(cs.assignment) - 1,
        num_constraints=cs.num_constraints,
        num_native_checks=cs.num_native_checks,
        public_indices=tuple(cs.public_indices),
        constraints=flattened,
    )


def _trip_fallback(key: tuple[str, bytes]) -> None:
    """Retire a family from the fast path permanently."""
    _FAMILIES.pop(key, None)
    _FALLEN_BACK.add(key)


def _compile(
    circuit: Circuit,
    key: tuple[str, bytes],
    public_input: Sequence[int],
    witness: Any,
) -> R1CSStats:
    """Full synthesis that records a template for the observed shape."""
    with _TRACER.span("snark/template_compile", circuit=circuit.circuit_id):
        builder = _full_synthesis(
            circuit, public_input, witness, keep_constraints=True
        )
        template = _template_from(builder, circuit)
        family = _FAMILIES.setdefault(key, {})
        if template.shape_key in family or len(family) < MAX_TEMPLATES_PER_FAMILY:
            family[template.shape_key] = template
            # build the exec-compiled batched checker now, inside the
            # compile span, so the first template hit is already fast
            _checker_for(key, template, _refutable_only())
            _COMPILES.inc()
        else:
            # the family keeps presenting new shapes: it is shape-shifting,
            # so stop paying the trace-then-resynthesize toll for it
            _trip_fallback(key)
            _FALLBACKS.inc()
    return builder.stats()


#: Per-process cache of exec-compiled batched checkers, keyed by
#: ``(family_key, shape_key, refutable_only)``.  Checkers close over nothing
#: and cannot be pickled, so pool workers compile their own from the shipped
#: templates on first use.
_CHECKERS: dict[tuple, Any] = {}


def _refutable_only() -> bool:
    """Whether the checker may skip validated product-definition rows.

    Tied to the batched field backend so the default configuration checks
    every constraint exactly as before; ``use_backend("batched")`` opts into
    the provenance-based skip (see the module docstring for why it is exact).
    """
    return field_backend.active().batched_eval


#: Coefficients below this inline as decimal literals; larger ones hoist
#: into the checker's constants tuple — CPython's parser is the bottleneck
#: of checker compilation, and a full-width field coefficient is a 77-digit
#: literal.
_INLINE_COEFF_MAX: int = 1 << 32


def _coeff_expr(coeff: int, constants: list[int]) -> str:
    """Render a coefficient compactly: small literal, ``-small`` for values
    just under the modulus (subtraction terms), or a constants-tuple slot."""
    negated = MODULUS - coeff
    if negated < coeff:
        sign, magnitude = "-", negated
    else:
        sign, magnitude = "", coeff
    if magnitude < _INLINE_COEFF_MAX:
        return f"{sign}{magnitude}"
    constants.append(coeff)
    return f"K[{len(constants) - 1}]"


def _term_expr(terms: tuple[tuple[int, int], ...], constants: list[int]) -> str:
    if not terms:
        return "0"
    parts = []
    for var, coeff in terms:
        if var == 0:  # ONE: z[0] == 1, the coefficient stands alone
            parts.append(_coeff_expr(coeff, constants))
        elif coeff == 1:
            parts.append(f"z[{var}]")
        else:
            parts.append(f"{_coeff_expr(coeff, constants)}*z[{var}]")
    return "+".join(parts)


def _checker_for(
    key: tuple[str, bytes], template: ConstraintTemplate, refutable_only: bool = False
):
    """The batched pass as one generated flat function.

    Emits ``<A_i,z> * <B_i,z> == <C_i,z>`` as a literal expression per
    constraint — variable indices and coefficients baked in, no dict or
    tuple iteration at check time — and ``exec``-compiles the lot once per
    process per template (the same technique as the unrolled MiMC
    permutation).  Sums may go negative through the ``-small`` coefficient
    form; Python's ``%`` normalizes them, so the comparisons stay exact.
    Returns False at the first unsatisfied constraint; the caller re-runs
    full synthesis for the canonical error, so no violation bookkeeping is
    needed here.

    ``refutable_only`` omits validated product-definition rows (the batched
    backend's provenance-based skip); both checker variants are cached
    independently, so toggling backends never recompiles.
    """
    cache_key = (key, template.shape_key, refutable_only)
    checker = _CHECKERS.get(cache_key)
    if checker is None:
        constants: list[int] = []
        body = []
        for a_terms, b_terms, c_terms, _annotation, computed in template.constraints:
            if refutable_only and computed:
                continue
            a = _term_expr(a_terms, constants)
            b = _term_expr(b_terms, constants)
            c = _term_expr(c_terms, constants)
            # common-form shortcuts: multiplying by the constant 1 is a
            # no-op, and a bare assignment variable on the C side is already
            # canonical, so both drop a bignum operation per constraint
            left = f"({a})%M" if b == "1" else f"({a})*({b})%M"
            if c == "0":
                body.append(f"    if {left}: return False")
            elif len(c_terms) == 1 and c_terms[0][0] != 0 and c_terms[0][1] == 1:
                body.append(f"    if {left} != {c}: return False")
            else:
                body.append(f"    if {left} != ({c})%M: return False")
        lines = [
            "def _check(z, M=M, K=K):",
            *body,
            "    return True",
        ]
        namespace: dict[str, Any] = {"M": MODULUS, "K": tuple(constants)}
        exec(compile("\n".join(lines), "<snark-template-checker>", "exec"), namespace)
        checker = namespace["_check"]
        _CHECKERS[cache_key] = checker
    return checker


def _first_violation(
    template: ConstraintTemplate, z: list[int]
) -> tuple[int, str] | None:
    """The batched streaming pass: first unsatisfied constraint, if any."""
    M = MODULUS
    for index, (a_terms, b_terms, c_terms, annotation, _computed) in enumerate(
        template.constraints
    ):
        total = 0
        for var, coeff in a_terms:
            total += coeff * z[var]
        left = total % M
        total = 0
        for var, coeff in b_terms:
            total += coeff * z[var]
        left = left * (total % M) % M
        total = 0
        for var, coeff in c_terms:
            total += coeff * z[var]
        if left != total % M:
            return index, annotation
    return None


def synthesize_for_proof(
    circuit: Circuit, public_input: Sequence[int], witness: Any
) -> tuple[R1CSStats, bool]:
    """Synthesize a statement for proving, through a template when possible.

    Returns ``(stats, via_template)``.  Behaviour is indistinguishable from
    a plain eager synthesis: identical :class:`R1CSStats`, identical
    acceptance, and identical :class:`UnsatisfiedConstraint` annotations on
    rejection (rejected witnesses re-run the slow path to reproduce the
    canonical error ordering).
    """
    if not _enabled or not getattr(circuit, "template_stable", True):
        return _full_synthesis(circuit, public_input, witness).stats(), False

    key = family_key(circuit)
    if key in _FALLEN_BACK:
        _FALLBACKS.inc()
        return _full_synthesis(circuit, public_input, witness).stats(), False

    family = _FAMILIES.get(key)
    if not family:
        _MISSES.inc()
        return _compile(circuit, key, public_input, witness), False

    evaluator = EvaluationBuilder()
    try:
        circuit.synthesize(evaluator, public_input, witness)
    except _EvalAbort:
        # A native check failed.  Re-run the eager builder so the raised
        # error carries the canonical eager ordering (an arithmetic
        # constraint enforced earlier in the synthesis wins over the native
        # check) and annotation.  If the slow path somehow succeeds, the
        # evaluation diverged from real synthesis: retire the family.
        stats = _full_synthesis(circuit, public_input, witness).stats()
        _trip_fallback(key)
        _FALLBACKS.inc()
        return stats, False

    template = family.get(evaluator.shape_key())
    if template is None:
        # a shape this family has not presented before: compile it too
        # (bounded by MAX_TEMPLATES_PER_FAMILY inside _compile)
        _MISSES.inc()
        return _compile(circuit, key, public_input, witness), False

    if not _checker_for(key, template, _refutable_only())(evaluator.assignment):
        # An arithmetic constraint is unsatisfied.  All native checks
        # passed and every constraint before it holds, so the eager path
        # would raise exactly here — but re-run it anyway: if the template
        # wiring had silently diverged under an identical shape (count
        # collision), rejecting a valid witness would break completeness.
        stats = _full_synthesis(circuit, public_input, witness).stats()
        _trip_fallback(key)
        _FALLBACKS.inc()
        return stats, False

    expected = tuple(v % MODULUS for v in public_input)
    declared = evaluator.public_values()
    if declared != expected:
        raise SynthesisError(
            "circuit did not allocate the declared public input: "
            f"declared {len(declared)} values, expected {len(expected)}"
        )
    _HITS.inc()
    return template.stats(), True


# -- cache management ------------------------------------------------------------


def enabled() -> bool:
    """Whether the template fast path is active in this process."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn the template fast path on or off (cache contents are kept)."""
    global _enabled
    _enabled = bool(flag)


@contextmanager
def use_templates(flag: bool) -> Iterator[None]:
    """Scope the fast path on or off — the equivalence-test/bench helper."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = previous


def clear() -> None:
    """Drop every cached template and fallback marker (counters untouched).

    Also drops the fused-permutation memo, so benchmark isolation hooks
    that call this measure cold-path behaviour for both caches.
    """
    _FAMILIES.clear()
    _FALLEN_BACK.clear()
    _CHECKERS.clear()
    _fused_memo.clear()


def clear_fused_memo() -> None:
    """Drop only the fused-permutation memo (benchmark isolation hook)."""
    _fused_memo.clear()


def fused_memo_size() -> int:
    """Number of currently memoized fused permutations."""
    return len(_fused_memo)


def template_count() -> int:
    """Total templates currently cached across all families."""
    return sum(len(family) for family in _FAMILIES.values())


def family_templates(circuit: Circuit) -> list[ConstraintTemplate]:
    """The cached templates for a circuit's family (tests/diagnostics)."""
    return list(_FAMILIES.get(family_key(circuit), {}).values())


def is_fallen_back(circuit: Circuit) -> bool:
    """True when the structural guard retired this circuit's family."""
    return family_key(circuit) in _FALLEN_BACK


def template_stats() -> dict:
    """Counter snapshot plus cache occupancy (the bench/telemetry surface)."""
    return {
        "compiles": int(_COMPILES.value),
        "hits": int(_HITS.value),
        "misses": int(_MISSES.value),
        "fallbacks": int(_FALLBACKS.value),
        "families": len(_FAMILIES),
        "templates": template_count(),
        "fallen_back_families": len(_FALLEN_BACK),
        "enabled": _enabled,
    }


def export_state() -> tuple[dict, set]:
    """Everything a pool worker needs to skip its own compile passes.

    Shipped (pickled) through the executor initializer next to the proving
    keys, so each worker starts with the parent's compiled templates and
    fallback markers instead of re-compiling once per worker — and never
    once per task.
    """
    return (
        {key: dict(family) for key, family in _FAMILIES.items()},
        set(_FALLEN_BACK),
    )


def import_state(state: tuple[dict, set]) -> None:
    """Merge a parent process's exported template state (worker side)."""
    families, fallen_back = state
    for key, family in families.items():
        if key in _FALLEN_BACK:
            continue
        _FAMILIES.setdefault(key, {}).update(family)
    for key in fallen_back:
        _trip_fallback(key)
