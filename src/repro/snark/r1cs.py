"""Rank-1 constraint systems (the paper's "arithmetic constraint system").

Def. 2.3 defines a constraint system as polynomials over a finite field in
public-input and witness variables; the standard SNARK arithmetization is
R1CS: every constraint has the shape ``<A, z> * <B, z> = <C, z>`` where ``z``
is the full assignment vector (with ``z[0] == 1``) and A, B, C are sparse
linear combinations.

This module is the *real* part of the SNARK substrate: constraints are
genuinely generated and evaluated against the assignment.  Constraint counts
reported by the proving layer come straight from here, which is what makes
proving-cost benchmarks meaningful.  Constraints are checked eagerly as they
are enforced (the assignment is always complete at enforcement time in our
builder), and can optionally be retained for structural inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.crypto.field import MODULUS
from repro.errors import SynthesisError, UnsatisfiedConstraint

#: Index of the constant-one variable present in every R1CS.
ONE: int = 0


class LinearCombination:
    """A sparse linear combination of R1CS variables.

    Immutable by convention; combining operations return new objects.  Terms
    map variable index -> coefficient (canonical field int, never zero).
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[int, int] | None = None) -> None:
        self.terms: dict[int, int] = {}
        if terms:
            for var, coeff in terms.items():
                c = coeff % MODULUS
                if c:
                    self.terms[var] = c

    @classmethod
    def constant(cls, value: int) -> "LinearCombination":
        """The LC representing a field constant (coefficient on ONE)."""
        return cls({ONE: value})

    @classmethod
    def variable(cls, index: int, coeff: int = 1) -> "LinearCombination":
        """The LC for a single variable with optional coefficient."""
        return cls({index: coeff})

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        result = dict(self.terms)
        for var, coeff in other.terms.items():
            c = (result.get(var, 0) + coeff) % MODULUS
            if c:
                result[var] = c
            else:
                result.pop(var, None)
        out = LinearCombination()
        out.terms = result
        return out

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return self + other.scale(MODULUS - 1)

    def scale(self, scalar: int) -> "LinearCombination":
        """Multiply every coefficient by ``scalar``."""
        s = scalar % MODULUS
        out = LinearCombination()
        if s:
            out.terms = {var: coeff * s % MODULUS for var, coeff in self.terms.items()}
        return out

    def evaluate(self, assignment: list[int]) -> int:
        """Evaluate against a full assignment vector (``assignment[0] == 1``)."""
        total = 0
        for var, coeff in self.terms.items():
            total += coeff * assignment[var]
        return total % MODULUS

    def is_constant(self) -> bool:
        """True when the LC involves only the constant-one variable."""
        return all(var == ONE for var in self.terms)

    def __repr__(self) -> str:
        inner = " + ".join(f"{c}*v{v}" for v, c in sorted(self.terms.items()))
        return f"LC({inner or '0'})"


@dataclass(frozen=True)
class Constraint:
    """One rank-1 constraint ``a * b = c`` with an annotation for debugging.

    ``computed`` records *provenance*, not syntax: True means the builder
    created ``c`` as a fresh variable assigned exactly ``<A,z> * <B,z>``
    (a product definition from :meth:`CircuitBuilder.mul`/``square``), so the
    constraint is satisfied by construction and can never be the first one to
    fail.  Genuinely refutable constraints (booleanity, nonzero, selects,
    equality against pre-existing wires) leave it False.  The batched
    witness-evaluation path in :mod:`repro.snark.compile` uses this to check
    only refutable rows; the eager path ignores it entirely.
    """

    a: LinearCombination
    b: LinearCombination
    c: LinearCombination
    annotation: str = ""
    computed: bool = False


@dataclass
class R1CSStats:
    """Aggregate size statistics of a synthesized constraint system."""

    num_constraints: int = 0
    num_variables: int = 0
    num_public_inputs: int = 0
    num_native_checks: int = 0

    def merge(self, other: "R1CSStats") -> "R1CSStats":
        """Combine statistics from two systems (used by recursion trees)."""
        return R1CSStats(
            num_constraints=self.num_constraints + other.num_constraints,
            num_variables=self.num_variables + other.num_variables,
            num_public_inputs=self.num_public_inputs + other.num_public_inputs,
            num_native_checks=self.num_native_checks + other.num_native_checks,
        )


class ConstraintSystem:
    """An R1CS under construction together with its satisfying assignment.

    The system is *assignment-carrying*: every variable is allocated with its
    concrete value, and every enforced constraint is immediately evaluated.
    An unsatisfied constraint raises :class:`UnsatisfiedConstraint` — this is
    precisely the behaviour the proving layer relies on for its
    knowledge-soundness contract (``Prove`` cannot succeed without a
    satisfying assignment).

    Set ``keep_constraints=True`` to retain the symbolic constraint list for
    structural tests; production paths keep only counters.
    """

    def __init__(self, keep_constraints: bool = False) -> None:
        self.assignment: list[int] = [1]  # z[0] == 1
        self.public_indices: list[int] = []
        self.keep_constraints = keep_constraints
        self.constraints: list[Constraint] = []
        self.num_constraints = 0
        self.num_native_checks = 0

    # -- allocation ----------------------------------------------------------

    def alloc(self, value: int, public: bool = False) -> int:
        """Allocate a variable with concrete ``value``; returns its index."""
        index = len(self.assignment)
        self.assignment.append(value % MODULUS)
        if public:
            self.public_indices.append(index)
        return index

    def alloc_public(self, value: int) -> int:
        """Allocate a public-input variable."""
        return self.alloc(value, public=True)

    def value_of(self, lc: LinearCombination) -> int:
        """Evaluate an LC against the current assignment."""
        return lc.evaluate(self.assignment)

    # -- enforcement -----------------------------------------------------------

    def enforce(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
        annotation: str = "",
        computed: bool = False,
    ) -> None:
        """Add the constraint ``a * b = c`` and check it immediately.

        ``computed`` flags product-definition constraints (see
        :class:`Constraint`); it does not change eager evaluation — every
        constraint is still checked here regardless.
        """
        left = a.evaluate(self.assignment) * b.evaluate(self.assignment) % MODULUS
        right = c.evaluate(self.assignment)
        if left != right:
            raise UnsatisfiedConstraint(
                f"constraint {annotation or self.num_constraints} unsatisfied: "
                f"{left} != {right}"
            )
        self.num_constraints += 1
        if self.keep_constraints:
            self.constraints.append(Constraint(a, b, c, annotation, computed))

    def assert_native(self, condition: bool, message: str) -> None:
        """Record a non-arithmetized predicate check.

        Native checks stand in for gadget families we deliberately do not
        arithmetize (see DESIGN.md §4); they participate in the same
        satisfy-or-raise contract as R1CS constraints.
        """
        self.num_native_checks += 1
        if not condition:
            raise UnsatisfiedConstraint(f"native check failed: {message}")

    # -- results -----------------------------------------------------------------

    def public_values(self) -> tuple[int, ...]:
        """The values of all public-input variables, in allocation order."""
        return tuple(self.assignment[i] for i in self.public_indices)

    def stats(self) -> R1CSStats:
        """Size statistics of the synthesized system."""
        return R1CSStats(
            num_constraints=self.num_constraints,
            num_variables=len(self.assignment) - 1,
            num_public_inputs=len(self.public_indices),
            num_native_checks=self.num_native_checks,
        )

    def is_satisfied(self) -> bool:
        """Re-evaluate retained constraints (requires ``keep_constraints``)."""
        if not self.keep_constraints:
            raise SynthesisError("constraints were not retained; cannot re-check")
        for constraint in self.constraints:
            left = (
                constraint.a.evaluate(self.assignment)
                * constraint.b.evaluate(self.assignment)
            ) % MODULUS
            if left != constraint.c.evaluate(self.assignment):
                return False
        return True


def lc_sum(lcs: Iterable[LinearCombination]) -> LinearCombination:
    """Sum an iterable of linear combinations.

    Accumulates into one mutable dict and builds a single
    :class:`LinearCombination` at the end.  The previous pairwise ``+``
    rebuilt a fresh dict per addend — quadratic in the accumulated term
    count (measured: 4.2x slower at 256 addends of 8 terms, 10x at 1024
    addends; see docs/PERFORMANCE.md).
    """
    total: dict[int, int] = {}
    for lc in lcs:
        for var, coeff in lc.terms.items():
            c = (total.get(var, 0) + coeff) % MODULUS
            if c:
                total[var] = c
            else:
                total.pop(var, None)
    out = LinearCombination()
    out.terms = total
    return out
