"""Process-pool proving for the recursive composition layer (paper §5.4).

The paper's scalability argument rests on Base proofs being mutually
independent and on the Merge tree admitting level-wise parallelism
("provers can work in parallel", §5.4).  :class:`ProverPool` supplies the
process-level substrate for that claim:

* **Worker-side proving-key cache.**  Proving keys registered before the
  pool starts are pickled once and shipped to every worker through the
  executor initializer; workers cache them by ``circuit_id`` so repeated
  chunks never re-transfer keys.  Keys registered after startup are shipped
  inline with each chunk (the worker still caches them on first sight).
* **Chunked submission.**  :meth:`map_prove` groups independent jobs into
  chunks sized to the worker count, amortizing one IPC round over many
  syntheses; :meth:`submit_prove` dispatches a single job for the
  merge-tree scheduler, which needs per-proof completion granularity.
* **Serial fallback.**  ``max_workers <= 1`` (or an executor that cannot be
  created, or a payload that cannot be pickled) degrades to in-process
  proving with identical results — the pool is an accelerator, never a
  correctness dependency.

Serialization seconds are measured on the submitting side (the pickling of
job payloads), synthesis seconds on the worker side (the actual
``prove_with_stats`` wall time); both feed the per-stage instrumentation on
:class:`~repro.snark.recursive.CompositionStats`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro import observability
from repro.errors import SnarkError, UnsatisfiedConstraint
from repro.snark import compile as snark_compile
from repro.snark import proving
from repro.snark.proving import ProveResult, ProvingKey

_REGISTRY = observability.registry()
_POOL_WORKERS = _REGISTRY.gauge(
    "repro_pool_workers",
    "effective worker count of the most recently constructed ProverPool",
).labels()
_POOL_TASKS = _REGISTRY.counter(
    "repro_pool_tasks_total",
    "individual proving jobs dispatched by ProverPool",
).labels()
_POOL_CHUNKS = _REGISTRY.counter(
    "repro_pool_chunks_total",
    "IPC rounds (chunks + single submissions) dispatched by ProverPool",
).labels()
_POOL_FALLBACKS = _REGISTRY.counter(
    "repro_pool_fallbacks_total",
    "times a ProverPool degraded to serial proving",
).labels()

# -- worker side ---------------------------------------------------------------

#: Per-worker proving-key cache, keyed by circuit_id.  Populated by the
#: executor initializer and lazily by inline-shipped keys.
_WORKER_PKS: dict[str, ProvingKey] = {}


def _init_worker(pk_blob: bytes) -> None:
    """Executor initializer: unpickle keys and templates exactly once.

    The blob carries the parent's registered proving keys plus its compiled
    constraint-template state (:func:`repro.snark.compile.export_state`), so
    workers start with every template the parent already compiled — each
    worker compiles a family at most once, and only for shapes the parent
    has not seen.
    """
    pks, template_state = pickle.loads(pk_blob)
    _WORKER_PKS.update(pks)
    snark_compile.import_state(template_state)


def _worker_pk(circuit_id: str, inline_pk: ProvingKey | None) -> ProvingKey:
    pk = _WORKER_PKS.get(circuit_id)
    if pk is None:
        if inline_pk is None:
            raise SnarkError(
                f"worker has no proving key for circuit '{circuit_id}'"
            )
        _WORKER_PKS[circuit_id] = inline_pk
        pk = inline_pk
    return pk


def _prove_chunk(circuit_id: str, job_blob: bytes) -> list[ProveResult]:
    """Prove a chunk of ``(public_input, witness)`` jobs in one IPC round."""
    inline_pk, jobs = pickle.loads(job_blob)
    pk = _worker_pk(circuit_id, inline_pk)
    return [proving.prove_with_stats(pk, public, witness) for public, witness in jobs]


def _prove_one(circuit_id: str, job_blob: bytes) -> ProveResult:
    """Prove a single job (merge-tree scheduling granularity)."""
    inline_pk, public, witness = pickle.loads(job_blob)
    pk = _worker_pk(circuit_id, inline_pk)
    return proving.prove_with_stats(pk, public, witness)


# -- parent side ---------------------------------------------------------------


@dataclass
class PoolStats:
    """Cumulative accounting of everything a :class:`ProverPool` dispatched."""

    #: Effective worker count (after CPU clamping); 0 in serial fallback.
    workers: int = 0
    #: Worker count originally requested.
    requested_workers: int = 0
    #: Individual proving jobs dispatched (chunked or not).
    tasks: int = 0
    #: IPC rounds (chunks + single submissions).
    chunks: int = 0
    #: Parent-side time spent pickling job payloads.
    serialization_seconds: float = 0.0
    #: Worker-side time spent inside ``prove_with_stats``.
    synthesis_seconds: float = 0.0
    #: Jobs whose synthesis ran through a cached constraint template.
    template_hits: int = 0
    #: Why the pool (if ever) degraded to serial proving.
    fallback_reason: str = ""

    def occupancy(self, wall_seconds: float) -> float:
        """Fraction of worker capacity kept busy over ``wall_seconds``."""
        if self.workers <= 0 or wall_seconds <= 0:
            return 0.0
        return min(1.0, self.synthesis_seconds / (wall_seconds * self.workers))

    def to_dict(self) -> dict:
        """JSON-serializable snapshot using the shared telemetry field names.

        ``synthesis_seconds`` / ``serialization_seconds`` match the
        identically named fields of
        :meth:`~repro.snark.recursive.CompositionStats.to_dict`, so pool and
        composition accounting line up column-for-column in telemetry.
        """
        return {
            "workers": self.workers,
            "requested_workers": self.requested_workers,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "serialization_seconds": self.serialization_seconds,
            "synthesis_seconds": self.synthesis_seconds,
            "template_hits": self.template_hits,
            "fallback_reason": self.fallback_reason,
        }


class ProverPool:
    """A process pool that proves independent statements concurrently.

    ``max_workers=None`` means "one worker per CPU".  By default the
    requested worker count is clamped to the machine's CPU count; a resolved
    count of one (or any failure to stand the pool up) selects the serial
    fallback, which proves in-process with identical results.  Set
    ``clamp_to_cpus=False`` to force real worker processes regardless of the
    CPU count (used by the equivalence tests, which must exercise the
    multiprocess path even on single-core CI machines).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        clamp_to_cpus: bool = True,
    ) -> None:
        cpus = os.cpu_count() or 1
        requested = cpus if max_workers is None else max(1, int(max_workers))
        self.workers = min(requested, cpus) if clamp_to_cpus else requested
        self.chunk_size = chunk_size
        self.stats = PoolStats(workers=self.workers, requested_workers=requested)
        self._pks: dict[str, ProvingKey] = {}
        self._late_pks: dict[str, ProvingKey] = {}
        self._executor: ProcessPoolExecutor | None = None
        self._serial = self.workers <= 1
        if self._serial:
            self.stats.workers = 0
            self.stats.fallback_reason = "resolved worker count <= 1"
        _POOL_WORKERS.set(self.stats.workers)

    # -- lifecycle -------------------------------------------------------------

    @property
    def serial(self) -> bool:
        """True when this pool proves in-process (no worker processes)."""
        return self._serial

    def register(self, pk: ProvingKey) -> None:
        """Make ``pk`` available to workers, keyed by its circuit_id.

        Keys registered before the first job ship once per worker via the
        executor initializer; later registrations ship inline per chunk.
        """
        cid = pk.circuit.circuit_id
        if self._executor is None and not self._serial:
            self._pks.setdefault(cid, pk)
        elif cid not in self._pks:
            self._late_pks.setdefault(cid, pk)

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._serial:
            return None
        if self._executor is None:
            try:
                started = time.perf_counter()
                blob = pickle.dumps(
                    (self._pks, snark_compile.export_state()),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self.stats.serialization_seconds += time.perf_counter() - started
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(blob,),
                )
            except Exception as exc:  # unpicklable keys, fork failure, ...
                self._degrade(f"executor start failed: {exc}")
        return self._executor

    def _degrade(self, reason: str) -> None:
        """Permanently fall back to serial proving."""
        self._serial = True
        self.stats.workers = 0
        self.stats.fallback_reason = self.stats.fallback_reason or reason
        _POOL_FALLBACKS.inc()
        _POOL_WORKERS.set(0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProverPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------------

    def _inline_pk(self, pk: ProvingKey) -> ProvingKey | None:
        """The key to ship with a payload (None when workers already hold it)."""
        return None if pk.circuit.circuit_id in self._pks else pk

    def _prove_serial(self, pk: ProvingKey, jobs: Sequence[tuple]) -> list[ProveResult]:
        results = []
        for public, witness in jobs:
            result = proving.prove_with_stats(pk, public, witness)
            self.stats.tasks += 1
            _POOL_TASKS.inc()
            self.stats.synthesis_seconds += result.prove_seconds
            self.stats.template_hits += result.via_template
            results.append(result)
        return results

    def map_prove(
        self, pk: ProvingKey, jobs: Sequence[tuple[Sequence[int], Any]]
    ) -> list[ProveResult]:
        """Prove independent ``(public_input, witness)`` jobs, order-preserving.

        Jobs are chunked so each IPC round amortizes over several syntheses;
        any failure to dispatch falls back to proving the remainder serially.
        """
        if not jobs:
            return []
        self.register(pk)
        executor = self._ensure_executor()
        if executor is None:
            return self._prove_serial(pk, jobs)

        size = self.chunk_size or max(1, -(-len(jobs) // (self.workers * 4)))
        chunks = [list(jobs[i : i + size]) for i in range(0, len(jobs), size)]
        cid = pk.circuit.circuit_id
        inline = self._inline_pk(pk)
        try:
            futures = []
            for chunk in chunks:
                started = time.perf_counter()
                blob = pickle.dumps((inline, chunk), protocol=pickle.HIGHEST_PROTOCOL)
                self.stats.serialization_seconds += time.perf_counter() - started
                futures.append(executor.submit(_prove_chunk, cid, blob))
                self.stats.chunks += 1
                self.stats.tasks += len(chunk)
                _POOL_CHUNKS.inc()
                _POOL_TASKS.inc(len(chunk))
            results: list[ProveResult] = []
            for future in futures:
                chunk_results = future.result()
                for result in chunk_results:
                    self.stats.synthesis_seconds += result.prove_seconds
                    self.stats.template_hits += result.via_template
                results.extend(chunk_results)
            return results
        except UnsatisfiedConstraint:
            raise
        except Exception as exc:
            self._degrade(f"chunked dispatch failed: {exc}")
            return self._prove_serial(pk, jobs)

    def submit_prove(
        self, pk: ProvingKey, public_input: Sequence[int], witness: Any
    ) -> Future:
        """Dispatch one job; returns a Future resolving to a ProveResult.

        In serial fallback the job is proven immediately and the returned
        future is already resolved (so schedulers built on
        ``concurrent.futures.wait`` work unchanged).
        """
        self.register(pk)
        executor = self._ensure_executor()
        if executor is not None:
            cid = pk.circuit.circuit_id
            try:
                started = time.perf_counter()
                blob = pickle.dumps(
                    (self._inline_pk(pk), tuple(public_input), witness),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self.stats.serialization_seconds += time.perf_counter() - started
                future = executor.submit(_prove_one, cid, blob)
                self.stats.chunks += 1
                self.stats.tasks += 1
                _POOL_CHUNKS.inc()
                _POOL_TASKS.inc()
                return future
            except Exception as exc:
                self._degrade(f"single-job dispatch failed: {exc}")
        future: Future = Future()
        future._repro_serial = True  # accounted at proving time, not collect
        try:
            [result] = self._prove_serial(pk, [(public_input, witness)])
            future.set_result(result)
        except Exception as exc:
            future.set_exception(exc)
        return future

    def collect(self, future: Future) -> ProveResult:
        """Resolve a future from :meth:`submit_prove`, updating accounting."""
        result = future.result()
        if not getattr(future, "_repro_serial", False):
            self.stats.synthesis_seconds += result.prove_seconds
            self.stats.template_hits += result.via_template
        return result
