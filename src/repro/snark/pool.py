"""Process-pool proving for the recursive composition layer (paper §5.4).

The paper's scalability argument rests on Base proofs being mutually
independent and on the Merge tree admitting level-wise parallelism
("provers can work in parallel", §5.4).  :class:`ProverPool` supplies the
process-level substrate for that claim:

* **Worker-side proving-key cache.**  Proving keys registered before the
  pool starts are pickled once and shipped to every worker through the
  executor initializer; workers cache them by ``circuit_id`` so repeated
  chunks never re-transfer keys.  Keys registered after startup are shipped
  inline with each chunk (the worker still caches them on first sight).
* **Chunked submission.**  :meth:`map_prove` groups independent jobs into
  chunks sized to the worker count, amortizing one IPC round over many
  syntheses; :meth:`submit_prove` dispatches a single job for the
  merge-tree scheduler, which needs per-proof completion granularity.
* **Serial fallback.**  ``max_workers <= 1`` (or an executor that cannot be
  created, or a payload that cannot be pickled) degrades to in-process
  proving with identical results — the pool is an accelerator, never a
  correctness dependency.

Serialization seconds are measured on the submitting side (the pickling of
job payloads), synthesis seconds on the worker side (the actual
``prove_with_stats`` wall time); both feed the per-stage instrumentation on
:class:`~repro.snark.recursive.CompositionStats`.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro import observability
from repro.crypto import backend as field_backend
from repro.errors import SnarkError, UnsatisfiedConstraint
from repro.snark import compile as snark_compile
from repro.snark import proving
from repro.snark.proving import ProveResult, ProvingKey

_REGISTRY = observability.registry()
_POOL_WORKERS = _REGISTRY.gauge(
    "repro_pool_workers",
    "effective worker count of the most recently constructed ProverPool",
).labels()
_POOL_TASKS = _REGISTRY.counter(
    "repro_pool_tasks_total",
    "individual proving jobs dispatched by ProverPool",
).labels()
_POOL_CHUNKS = _REGISTRY.counter(
    "repro_pool_chunks_total",
    "IPC rounds (chunks + single submissions) dispatched by ProverPool",
).labels()
_POOL_FALLBACKS = _REGISTRY.counter(
    "repro_pool_fallbacks_total",
    "times a ProverPool degraded to serial proving",
).labels()
_POOL_RETRIES = _REGISTRY.counter(
    "repro_pool_retries_total",
    "dispatches retried after a worker/dispatch failure",
).labels()
_POOL_INJECTED = _REGISTRY.counter(
    "repro_pool_injected_failures_total",
    "deterministic worker failures injected by a WorkerFaultInjector",
).labels()


class WorkerFaultInjector:
    """Deterministic, seeded worker-failure injection for :class:`ProverPool`.

    The ``n``-th dispatch fails iff a hash of ``(seed, n)`` lands under
    ``failure_rate`` — the same derivation style as the network layer's
    :class:`~repro.network.faults.FaultPlan`, so a seeded chaos run
    reproduces the exact same pool failures every time.  Failures are
    injected on the parent side (the dispatch raises before reaching a
    worker), which exercises the retry/degrade policy without poisoning the
    executor.
    """

    def __init__(self, failure_rate: float, seed: bytes = b"pool-faults") -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise SnarkError(f"failure_rate must be within [0, 1], got {failure_rate}")
        self.failure_rate = failure_rate
        self.seed = seed

    def should_fail(self, index: int) -> bool:
        """Whether the ``index``-th dispatch fails (pure in (seed, index))."""
        from repro.crypto.hashing import hash_bytes

        digest = hash_bytes(
            self.seed + index.to_bytes(8, "little"), b"pool/fault"
        )
        return int.from_bytes(digest[:8], "little") / float(1 << 64) < self.failure_rate

# -- worker side ---------------------------------------------------------------

#: Per-worker proving-key cache, keyed by circuit_id.  Populated by the
#: executor initializer and lazily by inline-shipped keys.
_WORKER_PKS: dict[str, ProvingKey] = {}


def _init_worker(pk_blob: bytes) -> None:
    """Executor initializer: unpickle keys, templates and the backend once.

    The blob carries the parent's registered proving keys, its compiled
    constraint-template state (:func:`repro.snark.compile.export_state`) and
    the name of its active field backend, so workers start with every
    template the parent already compiled and prove under the same backend —
    with the usual graceful fallback if the backend's optional dependency
    is missing in the worker (it never is: workers are forks of the parent,
    but the selection is name-based and must not hard-fail regardless).
    """
    pks, template_state, backend_name = pickle.loads(pk_blob)
    _WORKER_PKS.update(pks)
    snark_compile.import_state(template_state)
    field_backend.set_backend(backend_name, strict=False)


def _worker_pk(circuit_id: str, inline_pk: ProvingKey | None) -> ProvingKey:
    pk = _WORKER_PKS.get(circuit_id)
    if pk is None:
        if inline_pk is None:
            raise SnarkError(
                f"worker has no proving key for circuit '{circuit_id}'"
            )
        _WORKER_PKS[circuit_id] = inline_pk
        pk = inline_pk
    return pk


def _prove_chunk(circuit_id: str, job_blob: bytes) -> list[ProveResult]:
    """Prove a chunk of ``(public_input, witness)`` jobs in one IPC round.

    Routed through :func:`repro.snark.proving.prove_many`, so the whole
    chunk runs under one ``snark/batched_eval`` span and shares the
    fused-permutation memo across its witnesses.
    """
    inline_pk, jobs = pickle.loads(job_blob)
    pk = _worker_pk(circuit_id, inline_pk)
    return proving.prove_many(pk, jobs)


def _prove_one(circuit_id: str, job_blob: bytes) -> ProveResult:
    """Prove a single job (merge-tree scheduling granularity)."""
    inline_pk, public, witness = pickle.loads(job_blob)
    pk = _worker_pk(circuit_id, inline_pk)
    return proving.prove_with_stats(pk, public, witness)


def _verify_chunk(_circuit_id: str, job_blob: bytes) -> list[bool]:
    """Verify a chunk of ``(vk, public_input, proof)`` triples in one round.

    Raw :func:`repro.snark.proving.verify` calls — verdict counters live in
    the parent process (worker-side registries are invisible to it), so the
    parent counts the gathered results instead.
    """
    jobs = pickle.loads(job_blob)
    return [proving.verify(vk, public, proof) for vk, public, proof in jobs]


# -- parent side ---------------------------------------------------------------


@dataclass
class PoolStats:
    """Cumulative accounting of everything a :class:`ProverPool` dispatched."""

    #: Effective worker count (after CPU clamping); 0 in serial fallback.
    workers: int = 0
    #: Worker count originally requested.
    requested_workers: int = 0
    #: Individual proving jobs dispatched (chunked or not).
    tasks: int = 0
    #: IPC rounds (chunks + single submissions).
    chunks: int = 0
    #: Parent-side time spent pickling job payloads.
    serialization_seconds: float = 0.0
    #: Worker-side time spent inside ``prove_with_stats``.
    synthesis_seconds: float = 0.0
    #: Jobs whose synthesis ran through a cached constraint template.
    template_hits: int = 0
    #: Proof verifications routed through :meth:`ProverPool.map_verify`.
    verifications: int = 0
    #: Dispatches retried after a worker/dispatch failure.
    retries: int = 0
    #: Failures injected by an attached :class:`WorkerFaultInjector`.
    injected_failures: int = 0
    #: Why the pool (if ever) degraded to serial proving.
    fallback_reason: str = ""

    def occupancy(self, wall_seconds: float) -> float:
        """Fraction of worker capacity kept busy over ``wall_seconds``."""
        if self.workers <= 0 or wall_seconds <= 0:
            return 0.0
        return min(1.0, self.synthesis_seconds / (wall_seconds * self.workers))

    def to_dict(self) -> dict:
        """JSON-serializable snapshot using the shared telemetry field names.

        ``synthesis_seconds`` / ``serialization_seconds`` match the
        identically named fields of
        :meth:`~repro.snark.recursive.CompositionStats.to_dict`, so pool and
        composition accounting line up column-for-column in telemetry.
        """
        return {
            "workers": self.workers,
            "requested_workers": self.requested_workers,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "serialization_seconds": self.serialization_seconds,
            "synthesis_seconds": self.synthesis_seconds,
            "template_hits": self.template_hits,
            "verifications": self.verifications,
            "retries": self.retries,
            "injected_failures": self.injected_failures,
            "fallback_reason": self.fallback_reason,
        }


class ProverPool:
    """A process pool that proves independent statements concurrently.

    ``max_workers=None`` means "one worker per CPU".  By default the
    requested worker count is clamped to the machine's CPU count; a resolved
    count of one (or any failure to stand the pool up) selects the serial
    fallback, which proves in-process with identical results.  Set
    ``clamp_to_cpus=False`` to force real worker processes regardless of the
    CPU count (used by the equivalence tests, which must exercise the
    multiprocess path even on single-core CI machines).
    """

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        clamp_to_cpus: bool = True,
        max_dispatch_retries: int = 2,
        fault_injector: WorkerFaultInjector | None = None,
    ) -> None:
        cpus = os.cpu_count() or 1
        requested = cpus if max_workers is None else max(1, int(max_workers))
        self.workers = min(requested, cpus) if clamp_to_cpus else requested
        self.chunk_size = chunk_size
        #: How many times one dispatch is retried before the pool degrades
        #: to serial proving for good.
        self.max_dispatch_retries = max(0, int(max_dispatch_retries))
        #: Optional deterministic failure injection (chaos testing).
        self.fault_injector = fault_injector
        self._dispatch_index = 0
        self.stats = PoolStats(workers=self.workers, requested_workers=requested)
        self._pks: dict[str, ProvingKey] = {}
        self._late_pks: dict[str, ProvingKey] = {}
        self._executor: ProcessPoolExecutor | None = None
        self._serial = self.workers <= 1
        if self._serial:
            self.stats.workers = 0
            self.stats.fallback_reason = "resolved worker count <= 1"
        _POOL_WORKERS.set(self.stats.workers)

    # -- lifecycle -------------------------------------------------------------

    @property
    def serial(self) -> bool:
        """True when this pool proves in-process (no worker processes)."""
        return self._serial

    def register(self, pk: ProvingKey) -> None:
        """Make ``pk`` available to workers, keyed by its circuit_id.

        Keys registered before the first job ship once per worker via the
        executor initializer; later registrations ship inline per chunk.
        """
        cid = pk.circuit.circuit_id
        if self._executor is None and not self._serial:
            self._pks.setdefault(cid, pk)
        elif cid not in self._pks:
            self._late_pks.setdefault(cid, pk)

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._serial:
            return None
        if self._executor is None:
            try:
                started = time.perf_counter()
                blob = pickle.dumps(
                    (
                        self._pks,
                        snark_compile.export_state(),
                        field_backend.active().name,
                    ),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
                self.stats.serialization_seconds += time.perf_counter() - started
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(blob,),
                )
            except Exception as exc:  # unpicklable keys, fork failure, ...
                self._degrade(f"executor start failed: {exc}")
        return self._executor

    def _degrade(self, reason: str) -> None:
        """Permanently fall back to serial proving."""
        self._serial = True
        self.stats.workers = 0
        self.stats.fallback_reason = self.stats.fallback_reason or reason
        _POOL_FALLBACKS.inc()
        _POOL_WORKERS.set(0)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ProverPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------------

    def _inline_pk(self, pk: ProvingKey) -> ProvingKey | None:
        """The key to ship with a payload (None when workers already hold it)."""
        return None if pk.circuit.circuit_id in self._pks else pk

    @staticmethod
    def _failed_future(exc: Exception) -> Future:
        future: Future = Future()
        future.set_exception(exc)
        return future

    def _inject_failure(self) -> Exception | None:
        """Consult the fault injector for the next dispatch ordinal."""
        index = self._dispatch_index
        self._dispatch_index += 1
        if self.fault_injector is not None and self.fault_injector.should_fail(index):
            self.stats.injected_failures += 1
            _POOL_INJECTED.inc()
            return SnarkError(f"injected worker failure (dispatch {index})")
        return None

    def _dispatch(
        self, executor: ProcessPoolExecutor, fn, cid: str, payload: tuple
    ) -> Future:
        """One IPC round; never raises — failures come back as failed futures."""
        injected = self._inject_failure()
        if injected is not None:
            return self._failed_future(injected)
        try:
            started = time.perf_counter()
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            self.stats.serialization_seconds += time.perf_counter() - started
            future = executor.submit(fn, cid, blob)
        except Exception as exc:  # unpicklable payload, broken executor, ...
            return self._failed_future(exc)
        self.stats.chunks += 1
        _POOL_CHUNKS.inc()
        return future

    def _count_retry(self) -> None:
        self.stats.retries += 1
        _POOL_RETRIES.inc()

    def _prove_serial(self, pk: ProvingKey, jobs: Sequence[tuple]) -> list[ProveResult]:
        results = []
        for public, witness in jobs:
            result = proving.prove_with_stats(pk, public, witness)
            self.stats.tasks += 1
            _POOL_TASKS.inc()
            self.stats.synthesis_seconds += result.prove_seconds
            self.stats.template_hits += result.via_template
            results.append(result)
        return results

    def map_prove(
        self, pk: ProvingKey, jobs: Sequence[tuple[Sequence[int], Any]]
    ) -> list[ProveResult]:
        """Prove independent ``(public_input, witness)`` jobs, order-preserving.

        Jobs are chunked so each IPC round amortizes over several syntheses.
        Failed chunks — a dying worker, an unpicklable payload, an injected
        fault — are retried up to ``max_dispatch_retries`` times (counted on
        ``repro_pool_retries_total``); a chunk that exhausts its retries
        degrades the pool to serial proving, which finishes it (and every
        later chunk) in-process with identical results.
        ``UnsatisfiedConstraint`` is a *proof* failure, never a transport
        failure, and is always re-raised.
        """
        if not jobs:
            return []
        self.register(pk)
        executor = self._ensure_executor()
        if executor is None:
            return self._prove_serial(pk, jobs)

        size = self.chunk_size or max(1, -(-len(jobs) // (self.workers * 4)))
        chunks = [list(jobs[i : i + size]) for i in range(0, len(jobs), size)]
        cid = pk.circuit.circuit_id
        inline = self._inline_pk(pk)
        futures = []
        for chunk in chunks:
            futures.append(self._dispatch(executor, _prove_chunk, cid, (inline, chunk)))
            self.stats.tasks += len(chunk)
            _POOL_TASKS.inc(len(chunk))

        results: list[ProveResult] = []
        for chunk, future in zip(chunks, futures):
            chunk_results = self._await_chunk(executor, cid, inline, chunk, future)
            if chunk_results is None:  # retries exhausted; pool degraded
                results.extend(self._prove_serial_results(pk, chunk))
                continue
            for result in chunk_results:
                self.stats.synthesis_seconds += result.prove_seconds
                self.stats.template_hits += result.via_template
            results.extend(chunk_results)
        return results

    def _await_chunk(
        self,
        executor: ProcessPoolExecutor,
        cid: str,
        inline: ProvingKey | None,
        chunk: list,
        future: Future,
    ) -> list[ProveResult] | None:
        """Resolve one chunk, retrying on transport failure; None = give up."""
        if self._serial:
            return None
        for attempt in range(self.max_dispatch_retries + 1):
            try:
                return future.result()
            except UnsatisfiedConstraint:
                raise
            except Exception as exc:
                if attempt == self.max_dispatch_retries:
                    self._degrade(
                        f"chunk failed after {attempt} retries: {exc}"
                    )
                    return None
                self._count_retry()
                future = self._dispatch(executor, _prove_chunk, cid, (inline, chunk))
        return None

    def _prove_serial_results(
        self, pk: ProvingKey, jobs: Sequence[tuple]
    ) -> list[ProveResult]:
        """Serial proving for jobs already counted as dispatched tasks."""
        results = []
        for public, witness in jobs:
            result = proving.prove_with_stats(pk, public, witness)
            self.stats.synthesis_seconds += result.prove_seconds
            self.stats.template_hits += result.via_template
            results.append(result)
        return results

    def map_verify(
        self, jobs: Sequence[tuple["proving.VerifyingKey", Sequence[int], Any]]
    ) -> list[bool]:
        """Verify independent ``(vk, public_input, proof)`` triples, in order.

        The batched-WCert entry point: a block's certificate proofs go out
        as chunks sized to the worker count, and the verdict list lines up
        positionally with ``jobs``.  A chunk that keeps failing after
        ``max_dispatch_retries`` retries degrades the pool to serial
        verification (identical results); a pool already in serial fallback
        verifies in-process via :func:`repro.snark.proving.verify_many`.
        Verdicts are counted on ``repro_snark_batch_verify_total{result}``
        in the parent process either way, and jobs on
        ``repro_pool_tasks_total`` / ``PoolStats.verifications``.
        """
        if not jobs:
            return []
        self.stats.verifications += len(jobs)
        executor = self._ensure_executor()
        if executor is None:
            return proving.verify_many(jobs)

        size = self.chunk_size or max(1, -(-len(jobs) // (self.workers * 4)))
        chunks = [tuple(jobs[i : i + size]) for i in range(0, len(jobs), size)]
        futures = []
        for chunk in chunks:
            futures.append(self._dispatch(executor, _verify_chunk, "", chunk))
            self.stats.tasks += len(chunk)
            _POOL_TASKS.inc(len(chunk))

        results: list[bool] = []
        for chunk, future in zip(chunks, futures):
            verdicts = self._await_verify_chunk(executor, chunk, future)
            if verdicts is None:  # retries exhausted; pool degraded
                verdicts = [
                    proving.verify(vk, public, proof)
                    for vk, public, proof in chunk
                ]
            results.extend(verdicts)
        proving.count_batch_verdicts(results)
        return results

    def _await_verify_chunk(
        self, executor: ProcessPoolExecutor, chunk: tuple, future: Future
    ) -> list[bool] | None:
        """Resolve one verify chunk, retrying on failure; None = give up."""
        if self._serial:
            return None
        for attempt in range(self.max_dispatch_retries + 1):
            try:
                return future.result()
            except Exception as exc:
                if attempt == self.max_dispatch_retries:
                    self._degrade(
                        f"verify chunk failed after {attempt} retries: {exc}"
                    )
                    return None
                self._count_retry()
                future = self._dispatch(executor, _verify_chunk, "", chunk)
        return None

    def submit_prove(
        self, pk: ProvingKey, public_input: Sequence[int], witness: Any
    ) -> Future:
        """Dispatch one job; returns a Future resolving to a ProveResult.

        In serial fallback the job is proven immediately and the returned
        future is already resolved (so schedulers built on
        ``concurrent.futures.wait`` work unchanged).  A dispatch that fails
        (including an injected fault) is retried up to
        ``max_dispatch_retries`` times before the pool degrades to serial.
        """
        self.register(pk)
        executor = self._ensure_executor()
        if executor is not None:
            cid = pk.circuit.circuit_id
            payload = (self._inline_pk(pk), tuple(public_input), witness)
            for attempt in range(self.max_dispatch_retries + 1):
                future = self._dispatch(executor, _prove_one, cid, payload)
                exc = future.exception() if future.done() else None
                if exc is None:
                    self.stats.tasks += 1
                    _POOL_TASKS.inc()
                    # remember the job so collect() can re-dispatch if the
                    # worker dies after submission
                    future._repro_job = (pk, tuple(public_input), witness)
                    return future
                if attempt == self.max_dispatch_retries:
                    self._degrade(f"single-job dispatch failed: {exc}")
                    break
                self._count_retry()
        future = Future()
        future._repro_serial = True  # accounted at proving time, not collect
        try:
            [result] = self._prove_serial(pk, [(public_input, witness)])
            future.set_result(result)
        except Exception as exc:
            future.set_exception(exc)
        return future

    def collect(self, future: Future) -> ProveResult:
        """Resolve a future from :meth:`submit_prove`, updating accounting.

        A worker that died *after* accepting the job surfaces here; the job
        is re-dispatched through :meth:`submit_prove` (whose own retry and
        degrade policy bounds the recovery), so the merge-tree scheduler
        never sees a transport failure — only proof failures propagate.
        """
        try:
            result = future.result()
        except UnsatisfiedConstraint:
            raise
        except Exception as exc:
            job = getattr(future, "_repro_job", None)
            if job is None:
                raise
            depth = getattr(future, "_repro_redispatches", 0)
            if depth >= self.max_dispatch_retries:
                self._degrade(f"job failed after {depth} re-dispatches: {exc}")
            else:
                self._count_retry()
            pk, public_input, witness = job
            retry = self.submit_prove(pk, public_input, witness)
            retry._repro_redispatches = depth + 1
            return self.collect(retry)
        if not getattr(future, "_repro_serial", False):
            self.stats.synthesis_seconds += result.prove_seconds
            self.stats.template_hits += result.via_template
        return result
