"""SNARK substrate: R1CS, circuit DSL, gadgets, proving, recursion.

The proving layer is a documented simulation over a real arithmetization —
see :mod:`repro.snark.proving` and DESIGN.md §4 for the substitution notice.
"""

from repro.snark.circuit import Circuit, CircuitBuilder, Wire
from repro.snark.compile import (
    ConstraintTemplate,
    EvaluationBuilder,
    synthesize_for_proof,
    template_stats,
    use_templates,
)
from repro.snark.pool import PoolStats, ProverPool
from repro.snark.proving import (
    PROOF_SIZE,
    Proof,
    ProveResult,
    ProvingKey,
    VerifyingKey,
    expect_valid,
    prove,
    prove_with_stats,
    setup,
    verify,
)
from repro.snark.r1cs import ConstraintSystem, LinearCombination, R1CSStats
from repro.snark.recursive import (
    CompositionStats,
    RecursiveComposer,
    TransitionProof,
    TransitionSystem,
)

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CompositionStats",
    "ConstraintSystem",
    "ConstraintTemplate",
    "EvaluationBuilder",
    "LinearCombination",
    "PROOF_SIZE",
    "PoolStats",
    "Proof",
    "ProveResult",
    "ProverPool",
    "ProvingKey",
    "R1CSStats",
    "RecursiveComposer",
    "TransitionProof",
    "TransitionSystem",
    "VerifyingKey",
    "Wire",
    "expect_valid",
    "prove",
    "prove_with_stats",
    "setup",
    "synthesize_for_proof",
    "template_stats",
    "use_templates",
    "verify",
]
