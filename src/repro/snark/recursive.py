"""Recursive SNARK composition for state-transition systems (Def. 2.4/2.5).

Implements the paper's ``(Base, Merge)`` pair:

* **Base** proves a single transition: "there exists ``t`` such that
  ``s_{i+1} = update(t, s_i)``", with states exposed as digests.
* **Merge** combines two proofs over adjacent digest ranges
  ``(d_i → d_k)`` and ``(d_k → d_j)`` into one proof for ``(d_i → d_j)``.

The :class:`RecursiveComposer` owns the bootstrapped keys and offers
``prove_base`` / ``merge`` / ``prove_sequence``; the latter reproduces the
balanced merge trees of the paper's Figures 10 and 11 and reports tree
statistics (base count, merge count, depth) used by the recursion benches.

In a production recursive SNARK the Merge circuit arithmetizes the verifier
of its children; here child verification is a native check inside the Merge
circuit's synthesis (documented substitution, DESIGN.md §4) — the
composition *structure*, adjacency discipline, and cost accounting are real.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import Any, Generic, Protocol, Sequence, TypeVar

from repro import observability
from repro.errors import SnarkError, StateTransitionError
from repro.snark import proving
from repro.snark.circuit import Circuit, CircuitBuilder
from repro.snark.pool import ProverPool
from repro.snark.proving import Proof, ProveResult, ProvingKey, VerifyingKey
from repro.snark.r1cs import R1CSStats

_TRACER = observability.tracer()
_POOL_OCCUPANCY = observability.registry().gauge(
    "repro_pool_occupancy",
    "pool capacity kept busy by the last prove_sequence (0..1)",
).labels()

State = TypeVar("State")
Transition = TypeVar("Transition")


class TransitionSystem(Protocol[State, Transition]):
    """The paper's state transition system (Def. 2.4) plus a digest map.

    ``apply`` returns the successor state or raises
    :class:`~repro.errors.StateTransitionError` (the ``⊥`` case).  ``digest``
    maps a state to a field element — the form in which states appear as
    SNARK public inputs.
    """

    name: str

    def apply(self, transition: Transition, state: State) -> State: ...

    def digest(self, state: State) -> int: ...

    def synthesize_transition(
        self,
        builder: CircuitBuilder,
        state: State,
        transition: Transition,
        next_state: State,
    ) -> None:
        """Optional hook adding real R1CS constraints for the transition."""
        ...


@dataclass(frozen=True)
class TransitionProof:
    """A proof that some transitions move the system from one digest to another.

    ``span`` is the number of elementary transitions covered and ``depth``
    the height of the merge tree that produced it (0 for a base proof).
    """

    from_digest: int
    to_digest: int
    proof: Proof
    is_merge: bool
    span: int
    depth: int

    @property
    def public_input(self) -> tuple[int, int]:
        """The public input this proof verifies against: ``(d_from, d_to)``."""
        return (self.from_digest, self.to_digest)


@dataclass
class CompositionStats:
    """Aggregate statistics of building one recursive proof.

    The per-stage fields added for the parallel pipeline are zero on paths
    that never touch a pool; ``synthesis_seconds``, ``wall_seconds`` and
    ``critical_path_depth`` are filled by serial and parallel proving alike
    so the two cost shapes are directly comparable.
    """

    base_proofs: int = 0
    merge_proofs: int = 0
    tree_depth: int = 0
    constraints: int = 0
    native_checks: int = 0
    #: Total worker/prover-side time spent synthesizing circuits.
    synthesis_seconds: float = 0.0
    #: Parent-side time spent pickling payloads for the pool.
    serialization_seconds: float = 0.0
    #: End-to-end wall time of the composition (prove_sequence only).
    wall_seconds: float = 0.0
    #: Effective pool worker count (0 = serial proving).
    pool_workers: int = 0
    #: Proving jobs dispatched to the pool.
    pool_tasks: int = 0
    #: IPC rounds the pool performed (chunks + single submissions).
    pool_chunks: int = 0
    #: Fraction of pool capacity kept busy: synthesis / (wall * workers).
    pool_occupancy: float = 0.0
    #: Sequential proving stages on the longest path: one base + the merges
    #: above it — the lower bound on parallel latency, in proof stages.
    critical_path_depth: int = 0
    #: Proofs whose synthesis ran through a cached constraint template.
    template_hits: int = 0
    #: Synthesis seconds attributable to template-path (evaluation-only)
    #: proofs; ``synthesis_seconds - template_eval_seconds`` is the full
    #: eager-builder share, so the compile-once vs. steady-state split is
    #: visible directly on the stats object.
    template_eval_seconds: float = 0.0

    def record(self, stats: R1CSStats) -> None:
        self.constraints += stats.num_constraints
        self.native_checks += stats.num_native_checks

    def record_result(self, result: ProveResult) -> None:
        """Fold in one proof's R1CS counters and synthesis timing."""
        self.record(result.stats)
        self.synthesis_seconds += result.prove_seconds
        if result.via_template:
            self.template_hits += 1
            self.template_eval_seconds += result.prove_seconds

    def to_dict(self) -> dict:
        """JSON-serializable snapshot using the shared telemetry field names.

        The timing fields (``wall_seconds``, ``synthesis_seconds``,
        ``serialization_seconds``) carry the same names here, in
        :meth:`~repro.snark.pool.PoolStats.to_dict` and in
        ``LatusNode.last_epoch_stats``, so every telemetry surface reports
        time under one schema.
        """
        return {
            "base_proofs": self.base_proofs,
            "merge_proofs": self.merge_proofs,
            "tree_depth": self.tree_depth,
            "constraints": self.constraints,
            "native_checks": self.native_checks,
            "synthesis_seconds": self.synthesis_seconds,
            "serialization_seconds": self.serialization_seconds,
            "wall_seconds": self.wall_seconds,
            "pool_workers": self.pool_workers,
            "pool_tasks": self.pool_tasks,
            "pool_chunks": self.pool_chunks,
            "pool_occupancy": self.pool_occupancy,
            "critical_path_depth": self.critical_path_depth,
            "template_hits": self.template_hits,
            "template_eval_seconds": self.template_eval_seconds,
        }


class _BaseCircuit(Circuit, Generic[State, Transition]):
    """Base SNARK circuit: one ``update`` application (Def. 2.5 item 1)."""

    def __init__(self, system: TransitionSystem[State, Transition]) -> None:
        self.system = system
        self.circuit_id = f"stp/base/{system.name}"
        # systems whose constraint shape varies per witness beyond a small
        # recurring set (e.g. the batched-epoch ablation) opt out of the
        # template cache here
        self.template_stable = bool(getattr(system, "template_stable", True))

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: Any,
    ) -> None:
        state, transition = witness
        d_from, d_to = public_input
        builder.alloc_public(d_from)
        builder.alloc_public(d_to)
        builder.assert_native(
            self.system.digest(state) == d_from,
            "base: starting state does not match d_from",
        )
        try:
            next_state = self.system.apply(transition, state)
        except StateTransitionError as exc:
            builder.assert_native(False, f"base: update returned ⊥ ({exc})")
            return
        builder.assert_native(
            self.system.digest(next_state) == d_to,
            "base: resulting state does not match d_to",
        )
        synthesize_hook = getattr(self.system, "synthesize_transition", None)
        if synthesize_hook is not None:
            synthesize_hook(builder, state, transition, next_state)


class _MergeCircuit(Circuit):
    """Merge SNARK circuit: glue two adjacent proofs (Def. 2.5 item 2).

    Child proofs are verified against explicit ``(base_vk, merge_vk)``
    references rather than a closure over the owning composer, so proving
    keys — and everything reachable from them — round-trip through
    ``pickle`` and can be shipped to pool workers.  The keys are bound after
    ``Setup`` (key derivation depends only on ``circuit_id`` and the
    parameter digest, so the bootstrapping order is not circular).
    """

    def __init__(
        self,
        system_name: str,
        base_vk: VerifyingKey | None = None,
        merge_vk: VerifyingKey | None = None,
    ) -> None:
        self.circuit_id = f"stp/merge/{system_name}"
        self.base_vk = base_vk
        self.merge_vk = merge_vk

    def bind_keys(self, base_vk: VerifyingKey, merge_vk: VerifyingKey) -> None:
        """Attach the child verification keys (post-Setup bootstrap step)."""
        self.base_vk = base_vk
        self.merge_vk = merge_vk

    def _verify_child(self, child: TransitionProof) -> bool:
        vk = self.merge_vk if child.is_merge else self.base_vk
        if vk is None:
            raise SnarkError("merge circuit has no child verification keys bound")
        return proving.verify(vk, child.public_input, child.proof)

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: Any,
    ) -> None:
        left, right = witness
        d_from, d_to = public_input
        builder.alloc_public(d_from)
        builder.alloc_public(d_to)
        builder.assert_native(
            left.from_digest == d_from, "merge: left proof does not start at d_from"
        )
        builder.assert_native(
            left.to_digest == right.from_digest,
            "merge: child proofs are not adjacent",
        )
        builder.assert_native(
            right.to_digest == d_to, "merge: right proof does not end at d_to"
        )
        builder.assert_native(self._verify_child(left), "merge: left child invalid")
        builder.assert_native(self._verify_child(right), "merge: right child invalid")


class RecursiveComposer(Generic[State, Transition]):
    """Bootstraps and drives the ``(Base, Merge)`` pair for one system."""

    def __init__(self, system: TransitionSystem[State, Transition]) -> None:
        self.system = system
        self._base_pk: ProvingKey
        self._merge_pk: ProvingKey
        self._base_pk, self.base_vk = proving.setup(_BaseCircuit(system))
        merge_circuit = _MergeCircuit(system.name)
        self._merge_pk, self.merge_vk = proving.setup(merge_circuit)
        merge_circuit.bind_keys(self.base_vk, self.merge_vk)

    def register_keys(self, pool: ProverPool) -> None:
        """Register both proving keys with a pool (idempotent)."""
        pool.register(self._base_pk)
        pool.register(self._merge_pk)

    # -- verification ----------------------------------------------------------

    def verify(self, transition_proof: TransitionProof) -> bool:
        """Verify a base or merge proof against the appropriate key."""
        vk = self.merge_vk if transition_proof.is_merge else self.base_vk
        return proving.verify(
            vk, transition_proof.public_input, transition_proof.proof
        )

    # -- proving -----------------------------------------------------------------

    def prove_base(
        self,
        state: State,
        transition: Transition,
        stats: CompositionStats | None = None,
    ) -> tuple[TransitionProof, State]:
        """Prove one transition; returns the proof and the successor state."""
        next_state = self.system.apply(transition, state)
        d_from = self.system.digest(state)
        d_to = self.system.digest(next_state)
        with _TRACER.span("prove/base", system=self.system.name):
            result = proving.prove_with_stats(
                self._base_pk, (d_from, d_to), (state, transition)
            )
        if stats is not None:
            stats.base_proofs += 1
            stats.record_result(result)
        proof = TransitionProof(
            from_digest=d_from,
            to_digest=d_to,
            proof=result.proof,
            is_merge=False,
            span=1,
            depth=0,
        )
        return proof, next_state

    def merge(
        self,
        left: TransitionProof,
        right: TransitionProof,
        stats: CompositionStats | None = None,
    ) -> TransitionProof:
        """Merge two adjacent proofs into one (raises if not adjacent)."""
        if left.to_digest != right.from_digest:
            raise SnarkError("cannot merge proofs over non-adjacent ranges")
        public = (left.from_digest, right.to_digest)
        result = proving.prove_with_stats(self._merge_pk, public, (left, right))
        if stats is not None:
            stats.merge_proofs += 1
            stats.record_result(result)
        return TransitionProof(
            from_digest=left.from_digest,
            to_digest=right.to_digest,
            proof=result.proof,
            is_merge=True,
            span=left.span + right.span,
            depth=max(left.depth, right.depth) + 1,
        )

    def merge_all(
        self,
        proofs: Sequence[TransitionProof],
        stats: CompositionStats | None = None,
    ) -> TransitionProof:
        """Merge a chain of adjacent proofs into one via a balanced tree.

        This reproduces the merge trees of the paper's Fig. 10 (within a
        block) and Fig. 11 (across a withdrawal epoch).
        """
        if not proofs:
            raise SnarkError("cannot merge an empty proof list")
        level = list(proofs)
        level_number = 0
        while len(level) > 1:
            level_number += 1
            with _TRACER.span(
                "prove/merge_level", level=level_number, merges=len(level) // 2
            ):
                next_level = []
                for i in range(0, len(level) - 1, 2):
                    next_level.append(self.merge(level[i], level[i + 1], stats))
                if len(level) % 2 == 1:
                    next_level.append(level[-1])
                level = next_level
        if stats is not None:
            stats.tree_depth = max(stats.tree_depth, level[0].depth)
        return level[0]

    # -- parallel proving ---------------------------------------------------------

    def prove_bases_pool(
        self,
        state: State,
        transitions: Sequence[Transition],
        pool: ProverPool,
        stats: CompositionStats | None = None,
    ) -> tuple[list[TransitionProof], State]:
        """Prove every transition's base proof through a pool.

        The state chain (the inherently sequential part: each digest depends
        on the previous ``apply``) is computed up front in the parent; the
        expensive circuit syntheses then dispatch as independent jobs.
        """
        jobs: list[tuple[tuple[int, int], Any]] = []
        digest_pairs: list[tuple[int, int]] = []
        current = state
        d_current = self.system.digest(current)
        for transition in transitions:
            next_state = self.system.apply(transition, current)
            d_next = self.system.digest(next_state)
            jobs.append(((d_current, d_next), (current, transition)))
            digest_pairs.append((d_current, d_next))
            current, d_current = next_state, d_next
        results = pool.map_prove(self._base_pk, jobs)
        proofs = []
        for (d_from, d_to), result in zip(digest_pairs, results):
            if stats is not None:
                stats.base_proofs += 1
                stats.record_result(result)
            proofs.append(
                TransitionProof(
                    from_digest=d_from,
                    to_digest=d_to,
                    proof=result.proof,
                    is_merge=False,
                    span=1,
                    depth=0,
                )
            )
        return proofs, current

    def merge_all_parallel(
        self,
        proofs: Sequence[TransitionProof],
        pool: ProverPool,
        stats: CompositionStats | None = None,
    ) -> TransitionProof:
        """Level-scheduled parallel version of :meth:`merge_all`.

        Builds the *same* balanced tree as the serial path — identical
        pairing, odd-tail carries, ``span``/``depth`` accounting and root
        public input — but dispatches every merge to the pool the moment
        both of its children are ready, so independent merges (within a
        level, and across levels once their subtrees complete) prove
        concurrently.  Latency is bounded by the critical path (tree depth),
        not the merge count.
        """
        if not proofs:
            raise SnarkError("cannot merge an empty proof list")
        # deterministic level sizes of the serial tree: pairs merge, an odd
        # tail carries upward unchanged
        level_sizes = [len(proofs)]
        while level_sizes[-1] > 1:
            level_sizes.append((level_sizes[-1] + 1) // 2)
        top = len(level_sizes) - 1
        ready: dict[tuple[int, int], TransitionProof] = {}
        inflight: dict[Future, tuple[int, int, TransitionProof, TransitionProof]] = {}

        def place(level: int, idx: int, proof: TransitionProof) -> None:
            # odd-tail carry: the last node of an odd level rises for free
            while (
                level < top
                and level_sizes[level] % 2 == 1
                and idx == level_sizes[level] - 1
            ):
                level += 1
                idx = level_sizes[level] - 1
            ready[(level, idx)] = proof
            if level == top:
                return
            left_idx = idx & ~1
            left = ready.get((level, left_idx))
            right = ready.get((level, left_idx + 1))
            if left is None or right is None:
                return  # sibling still proving; its completion dispatches us
            if left.to_digest != right.from_digest:
                raise SnarkError("cannot merge proofs over non-adjacent ranges")
            future = pool.submit_prove(
                self._merge_pk, (left.from_digest, right.to_digest), (left, right)
            )
            inflight[future] = (level + 1, left_idx // 2, left, right)

        for i, proof in enumerate(proofs):
            place(0, i, proof)
        while (top, 0) not in ready:
            if not inflight:
                raise SnarkError("merge scheduler stalled with no work in flight")
            done, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                level, idx, left, right = inflight.pop(future)
                result = pool.collect(future)
                if stats is not None:
                    stats.merge_proofs += 1
                    stats.record_result(result)
                place(
                    level,
                    idx,
                    TransitionProof(
                        from_digest=left.from_digest,
                        to_digest=right.to_digest,
                        proof=result.proof,
                        is_merge=True,
                        span=left.span + right.span,
                        depth=max(left.depth, right.depth) + 1,
                    ),
                )
        root = ready[(top, 0)]
        if stats is not None:
            stats.tree_depth = max(stats.tree_depth, root.depth)
        return root

    def prove_sequence(
        self,
        state: State,
        transitions: Sequence[Transition],
        pool: ProverPool | None = None,
    ) -> tuple[TransitionProof, State, CompositionStats]:
        """Prove a whole transition sequence, returning the single root proof.

        Equivalent to proving every transition with Base and folding the
        results with :meth:`merge_all`.  With ``pool`` the base proofs and
        the merge tree dispatch through :meth:`prove_bases_pool` /
        :meth:`merge_all_parallel`; the resulting root proof, public input
        and proof counts are identical to the serial path.
        """
        if not transitions:
            raise SnarkError("cannot prove an empty transition sequence")
        started = time.perf_counter()
        stats = CompositionStats()
        with _TRACER.span(
            "prove/sequence",
            system=self.system.name,
            transitions=len(transitions),
            pooled=pool is not None,
        ):
            if pool is not None:
                self.register_keys(pool)
                pool_before = (
                    pool.stats.tasks,
                    pool.stats.chunks,
                    pool.stats.serialization_seconds,
                )
                with _TRACER.span("prove/base_batch", jobs=len(transitions)):
                    proofs, current = self.prove_bases_pool(
                        state, transitions, pool, stats
                    )
                with _TRACER.span("prove/merge_tree", leaves=len(proofs)):
                    root = self.merge_all_parallel(proofs, pool, stats)
                stats.pool_workers = pool.stats.workers
                stats.pool_tasks = pool.stats.tasks - pool_before[0]
                stats.pool_chunks = pool.stats.chunks - pool_before[1]
                stats.serialization_seconds = (
                    pool.stats.serialization_seconds - pool_before[2]
                )
            else:
                proofs = []
                current = state
                for transition in transitions:
                    proof, current = self.prove_base(current, transition, stats)
                    proofs.append(proof)
                root = self.merge_all(proofs, stats)
        stats.wall_seconds = time.perf_counter() - started
        stats.critical_path_depth = root.depth + 1
        if stats.pool_workers and stats.wall_seconds > 0:
            stats.pool_occupancy = min(
                1.0, stats.synthesis_seconds / (stats.wall_seconds * stats.pool_workers)
            )
        _POOL_OCCUPANCY.set(stats.pool_occupancy)
        return root, current, stats
