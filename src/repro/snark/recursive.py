"""Recursive SNARK composition for state-transition systems (Def. 2.4/2.5).

Implements the paper's ``(Base, Merge)`` pair:

* **Base** proves a single transition: "there exists ``t`` such that
  ``s_{i+1} = update(t, s_i)``", with states exposed as digests.
* **Merge** combines two proofs over adjacent digest ranges
  ``(d_i → d_k)`` and ``(d_k → d_j)`` into one proof for ``(d_i → d_j)``.

The :class:`RecursiveComposer` owns the bootstrapped keys and offers
``prove_base`` / ``merge`` / ``prove_sequence``; the latter reproduces the
balanced merge trees of the paper's Figures 10 and 11 and reports tree
statistics (base count, merge count, depth) used by the recursion benches.

In a production recursive SNARK the Merge circuit arithmetizes the verifier
of its children; here child verification is a native check inside the Merge
circuit's synthesis (documented substitution, DESIGN.md §4) — the
composition *structure*, adjacency discipline, and cost accounting are real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Protocol, Sequence, TypeVar

from repro.errors import SnarkError, StateTransitionError
from repro.snark import proving
from repro.snark.circuit import Circuit, CircuitBuilder
from repro.snark.proving import Proof, ProvingKey, VerifyingKey
from repro.snark.r1cs import R1CSStats

State = TypeVar("State")
Transition = TypeVar("Transition")


class TransitionSystem(Protocol[State, Transition]):
    """The paper's state transition system (Def. 2.4) plus a digest map.

    ``apply`` returns the successor state or raises
    :class:`~repro.errors.StateTransitionError` (the ``⊥`` case).  ``digest``
    maps a state to a field element — the form in which states appear as
    SNARK public inputs.
    """

    name: str

    def apply(self, transition: Transition, state: State) -> State: ...

    def digest(self, state: State) -> int: ...

    def synthesize_transition(
        self,
        builder: CircuitBuilder,
        state: State,
        transition: Transition,
        next_state: State,
    ) -> None:
        """Optional hook adding real R1CS constraints for the transition."""
        ...


@dataclass(frozen=True)
class TransitionProof:
    """A proof that some transitions move the system from one digest to another.

    ``span`` is the number of elementary transitions covered and ``depth``
    the height of the merge tree that produced it (0 for a base proof).
    """

    from_digest: int
    to_digest: int
    proof: Proof
    is_merge: bool
    span: int
    depth: int

    @property
    def public_input(self) -> tuple[int, int]:
        """The public input this proof verifies against: ``(d_from, d_to)``."""
        return (self.from_digest, self.to_digest)


@dataclass
class CompositionStats:
    """Aggregate statistics of building one recursive proof."""

    base_proofs: int = 0
    merge_proofs: int = 0
    tree_depth: int = 0
    constraints: int = 0
    native_checks: int = 0

    def record(self, stats: R1CSStats) -> None:
        self.constraints += stats.num_constraints
        self.native_checks += stats.num_native_checks


class _BaseCircuit(Circuit, Generic[State, Transition]):
    """Base SNARK circuit: one ``update`` application (Def. 2.5 item 1)."""

    def __init__(self, system: TransitionSystem[State, Transition]) -> None:
        self.system = system
        self.circuit_id = f"stp/base/{system.name}"

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: Any,
    ) -> None:
        state, transition = witness
        d_from, d_to = public_input
        builder.alloc_public(d_from)
        builder.alloc_public(d_to)
        builder.assert_native(
            self.system.digest(state) == d_from,
            "base: starting state does not match d_from",
        )
        try:
            next_state = self.system.apply(transition, state)
        except StateTransitionError as exc:
            builder.assert_native(False, f"base: update returned ⊥ ({exc})")
            return
        builder.assert_native(
            self.system.digest(next_state) == d_to,
            "base: resulting state does not match d_to",
        )
        synthesize_hook = getattr(self.system, "synthesize_transition", None)
        if synthesize_hook is not None:
            synthesize_hook(builder, state, transition, next_state)


class _MergeCircuit(Circuit):
    """Merge SNARK circuit: glue two adjacent proofs (Def. 2.5 item 2)."""

    def __init__(
        self, system_name: str, verify_child: Callable[[TransitionProof], bool]
    ) -> None:
        self._verify_child = verify_child
        self.circuit_id = f"stp/merge/{system_name}"

    def synthesize(
        self,
        builder: CircuitBuilder,
        public_input: Sequence[int],
        witness: Any,
    ) -> None:
        left, right = witness
        d_from, d_to = public_input
        builder.alloc_public(d_from)
        builder.alloc_public(d_to)
        builder.assert_native(
            left.from_digest == d_from, "merge: left proof does not start at d_from"
        )
        builder.assert_native(
            left.to_digest == right.from_digest,
            "merge: child proofs are not adjacent",
        )
        builder.assert_native(
            right.to_digest == d_to, "merge: right proof does not end at d_to"
        )
        builder.assert_native(self._verify_child(left), "merge: left child invalid")
        builder.assert_native(self._verify_child(right), "merge: right child invalid")


class RecursiveComposer(Generic[State, Transition]):
    """Bootstraps and drives the ``(Base, Merge)`` pair for one system."""

    def __init__(self, system: TransitionSystem[State, Transition]) -> None:
        self.system = system
        self._base_pk: ProvingKey
        self._merge_pk: ProvingKey
        self._base_pk, self.base_vk = proving.setup(_BaseCircuit(system))
        self._merge_pk, self.merge_vk = proving.setup(
            _MergeCircuit(system.name, self.verify)
        )

    # -- verification ----------------------------------------------------------

    def verify(self, transition_proof: TransitionProof) -> bool:
        """Verify a base or merge proof against the appropriate key."""
        vk = self.merge_vk if transition_proof.is_merge else self.base_vk
        return proving.verify(
            vk, transition_proof.public_input, transition_proof.proof
        )

    # -- proving -----------------------------------------------------------------

    def prove_base(
        self,
        state: State,
        transition: Transition,
        stats: CompositionStats | None = None,
    ) -> tuple[TransitionProof, State]:
        """Prove one transition; returns the proof and the successor state."""
        next_state = self.system.apply(transition, state)
        d_from = self.system.digest(state)
        d_to = self.system.digest(next_state)
        result = proving.prove_with_stats(
            self._base_pk, (d_from, d_to), (state, transition)
        )
        if stats is not None:
            stats.base_proofs += 1
            stats.record(result.stats)
        proof = TransitionProof(
            from_digest=d_from,
            to_digest=d_to,
            proof=result.proof,
            is_merge=False,
            span=1,
            depth=0,
        )
        return proof, next_state

    def merge(
        self,
        left: TransitionProof,
        right: TransitionProof,
        stats: CompositionStats | None = None,
    ) -> TransitionProof:
        """Merge two adjacent proofs into one (raises if not adjacent)."""
        if left.to_digest != right.from_digest:
            raise SnarkError("cannot merge proofs over non-adjacent ranges")
        public = (left.from_digest, right.to_digest)
        result = proving.prove_with_stats(self._merge_pk, public, (left, right))
        if stats is not None:
            stats.merge_proofs += 1
            stats.record(result.stats)
        return TransitionProof(
            from_digest=left.from_digest,
            to_digest=right.to_digest,
            proof=result.proof,
            is_merge=True,
            span=left.span + right.span,
            depth=max(left.depth, right.depth) + 1,
        )

    def merge_all(
        self,
        proofs: Sequence[TransitionProof],
        stats: CompositionStats | None = None,
    ) -> TransitionProof:
        """Merge a chain of adjacent proofs into one via a balanced tree.

        This reproduces the merge trees of the paper's Fig. 10 (within a
        block) and Fig. 11 (across a withdrawal epoch).
        """
        if not proofs:
            raise SnarkError("cannot merge an empty proof list")
        level = list(proofs)
        while len(level) > 1:
            next_level = []
            for i in range(0, len(level) - 1, 2):
                next_level.append(self.merge(level[i], level[i + 1], stats))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            level = next_level
        if stats is not None:
            stats.tree_depth = max(stats.tree_depth, level[0].depth)
        return level[0]

    def prove_sequence(
        self, state: State, transitions: Sequence[Transition]
    ) -> tuple[TransitionProof, State, CompositionStats]:
        """Prove a whole transition sequence, returning the single root proof.

        Equivalent to proving every transition with Base and folding the
        results with :meth:`merge_all`.
        """
        if not transitions:
            raise SnarkError("cannot prove an empty transition sequence")
        stats = CompositionStats()
        proofs: list[TransitionProof] = []
        current = state
        for transition in transitions:
            proof, current = self.prove_base(current, transition, stats)
            proofs.append(proof)
        root = self.merge_all(proofs, stats)
        return root, current, stats
