"""Circuit-builder DSL on top of the raw R1CS.

A :class:`Wire` is a handle pairing a linear combination with its concrete
value; the :class:`CircuitBuilder` offers the usual gadget vocabulary
(multiplication, booleans, equality, bit decomposition, conditional select)
from which the higher-level gadgets in :mod:`repro.snark.gadgets` are built.

Circuits themselves are classes implementing the :class:`Circuit` protocol:
a stable ``circuit_id`` (which determines the verification key at Setup) and
a ``synthesize`` method that, given the builder, the public input and the
witness, allocates wires and enforces the statement.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from repro.crypto.field import MODULUS, inv
from repro.errors import SynthesisError
from repro.snark.r1cs import ConstraintSystem, LinearCombination, R1CSStats, lc_sum


class Wire:
    """A circuit wire: a linear combination plus its concrete value."""

    __slots__ = ("lc", "value")

    def __init__(self, lc: LinearCombination, value: int) -> None:
        self.lc = lc
        self.value = value % MODULUS

    def __repr__(self) -> str:
        return f"Wire(value={self.value})"


class CircuitBuilder:
    """Allocation and constraint-enforcement surface used by circuits."""

    def __init__(self, keep_constraints: bool = False) -> None:
        self.cs = ConstraintSystem(keep_constraints=keep_constraints)
        self._one = Wire(LinearCombination.constant(1), 1)

    # -- allocation ----------------------------------------------------------

    @property
    def one(self) -> Wire:
        """The constant-one wire."""
        return self._one

    def constant(self, value: int) -> Wire:
        """A wire fixed to a field constant (costs no variable)."""
        return Wire(LinearCombination.constant(value), value)

    def alloc(self, value: int) -> Wire:
        """Allocate a private witness wire carrying ``value``."""
        index = self.cs.alloc(value)
        return Wire(LinearCombination.variable(index), value)

    def alloc_public(self, value: int) -> Wire:
        """Allocate a public-input wire carrying ``value``."""
        index = self.cs.alloc_public(value)
        return Wire(LinearCombination.variable(index), value)

    def alloc_publics(self, values: Sequence[int]) -> list[Wire]:
        """Allocate a list of public-input wires."""
        return [self.alloc_public(v) for v in values]

    # -- linear ops (free: no constraints) -----------------------------------

    def add(self, a: Wire, b: Wire) -> Wire:
        """Wire for ``a + b`` — linear, costs no constraint."""
        return Wire(a.lc + b.lc, (a.value + b.value) % MODULUS)

    def sub(self, a: Wire, b: Wire) -> Wire:
        """Wire for ``a - b`` — linear, costs no constraint."""
        return Wire(a.lc - b.lc, (a.value - b.value) % MODULUS)

    def scale(self, a: Wire, scalar: int) -> Wire:
        """Wire for ``scalar * a`` — linear, costs no constraint."""
        return Wire(a.lc.scale(scalar), a.value * scalar % MODULUS)

    def sum(self, wires: Sequence[Wire]) -> Wire:
        """Wire for the sum of ``wires`` — linear, costs no constraint.

        Accumulates terms into one mutable scratch dict (via
        :func:`~repro.snark.r1cs.lc_sum`) instead of chaining pairwise
        ``__add__``, which copies the accumulated dict per addend —
        quadratic in the total term count for add-heavy gadgets.
        ``LinearCombination`` stays immutable by convention; the scratch
        dict lives only inside the accumulator.
        """
        total_value = 0
        for w in wires:
            total_value += w.value
        return Wire(lc_sum(w.lc for w in wires), total_value % MODULUS)

    # -- multiplicative ops (one constraint each) ------------------------------

    def mul(self, a: Wire, b: Wire, annotation: str = "mul") -> Wire:
        """Allocate ``a * b`` and enforce the product constraint.

        The constraint is flagged ``computed``: its C side is the freshly
        allocated product variable, assigned exactly ``a.value * b.value``,
        so it holds by construction (see :class:`repro.snark.r1cs.Constraint`).
        """
        product = self.alloc(a.value * b.value % MODULUS)
        self.cs.enforce(a.lc, b.lc, product.lc, annotation, computed=True)
        return product

    def square(self, a: Wire, annotation: str = "square") -> Wire:
        """Allocate and enforce ``a * a``."""
        return self.mul(a, a, annotation)

    def enforce_equal(self, a: Wire, b: Wire, annotation: str = "eq") -> None:
        """Enforce ``a == b`` (one constraint: ``(a - b) * 1 = 0``)."""
        self.cs.enforce(a.lc - b.lc, self._one.lc, LinearCombination(), annotation)

    def enforce_zero(self, a: Wire, annotation: str = "zero") -> None:
        """Enforce ``a == 0``."""
        self.cs.enforce(a.lc, self._one.lc, LinearCombination(), annotation)

    def enforce_boolean(self, a: Wire, annotation: str = "bool") -> None:
        """Enforce ``a ∈ {0, 1}`` via ``a * (a - 1) = 0``."""
        self.cs.enforce(a.lc, a.lc - self._one.lc, LinearCombination(), annotation)

    def enforce_nonzero(self, a: Wire, annotation: str = "nonzero") -> None:
        """Enforce ``a != 0`` by exhibiting its inverse (one constraint)."""
        if a.value == 0:
            # allocate a bogus inverse so the constraint fails with the
            # canonical UnsatisfiedConstraint rather than a FieldError
            inverse = self.alloc(0)
        else:
            inverse = self.alloc(inv(a.value))
        self.cs.enforce(a.lc, inverse.lc, self._one.lc, annotation)

    # -- composite gadgets -----------------------------------------------------

    def alloc_bit(self, value: int) -> Wire:
        """Allocate a wire constrained to be boolean."""
        bit = self.alloc(value)
        self.enforce_boolean(bit)
        return bit

    def decompose_bits(self, a: Wire, num_bits: int, annotation: str = "bits") -> list[Wire]:
        """Decompose ``a`` into ``num_bits`` little-endian boolean wires.

        Enforces both booleanity of every bit and the recomposition
        ``sum(bit_i * 2**i) == a``; this doubles as a range check
        ``a < 2**num_bits``.
        """
        # out-of-range values get truncated bits so enforcement fails
        # canonically at the recomposition constraint
        bits = [self.alloc_bit((a.value >> i) & 1) for i in range(num_bits)]
        recomposed = self.sum(
            [self.scale(bit, 1 << i) for i, bit in enumerate(bits)]
        )
        self.enforce_equal(recomposed, a, annotation)
        return bits

    def enforce_range(self, a: Wire, num_bits: int, annotation: str = "range") -> None:
        """Enforce ``0 <= a < 2**num_bits`` (costs num_bits + 1 constraints)."""
        self.decompose_bits(a, num_bits, annotation)

    def select(self, condition: Wire, if_true: Wire, if_false: Wire) -> Wire:
        """Return ``condition ? if_true : if_false``.

        ``condition`` must already be boolean-constrained.  Costs one
        constraint: ``condition * (t - f) = out - f``.
        """
        out_value = if_true.value if condition.value else if_false.value
        out = self.alloc(out_value)
        self.cs.enforce(
            condition.lc,
            if_true.lc - if_false.lc,
            out.lc - if_false.lc,
            "select",
        )
        return out

    def swap_if(self, condition: Wire, a: Wire, b: Wire) -> tuple[Wire, Wire]:
        """Return ``(a, b)`` when condition is 0, ``(b, a)`` when 1.

        Two constraints; used by Merkle path verification.
        """
        left = self.select(condition, b, a)
        right = self.select(condition, a, b)
        return left, right

    def assert_native(self, condition: bool, message: str) -> None:
        """Forward a native (non-arithmetized) check to the system."""
        self.cs.assert_native(condition, message)

    # -- results -----------------------------------------------------------------

    def stats(self) -> R1CSStats:
        """Size statistics of everything enforced so far."""
        return self.cs.stats()


class Circuit(abc.ABC):
    """A provable statement: a stable identity plus a synthesis procedure.

    Subclasses set :attr:`circuit_id` (which, together with the parameter
    digest, determines the verification key identity at Setup) and implement
    :meth:`synthesize`.
    """

    #: Stable identifier of the constraint-system family.
    circuit_id: str = ""

    #: Whether :mod:`repro.snark.compile` may cache this family's constraint
    #: structure and replay later proofs through the evaluation-only builder.
    #: Set False on circuits whose shape varies per witness beyond a small
    #: set of recurring forms (e.g. the batched-epoch ablation circuit).
    template_stable: bool = True

    def parameters_digest(self) -> bytes:
        """Digest of circuit parameters that alter the constraint structure.

        Subclasses whose shape depends on parameters (tree depth, tx counts)
        override this so that differently-parameterized instances get
        distinct verification keys.
        """
        return b""

    @abc.abstractmethod
    def synthesize(
        self, builder: CircuitBuilder, public_input: Sequence[int], witness: Any
    ) -> None:
        """Allocate wires and enforce the statement.

        ``public_input`` is the tuple of field elements the verifier will see;
        the circuit must allocate exactly these values as public wires (the
        proving layer cross-checks).  ``witness`` is circuit-defined.
        """

    def check(self, public_input: Sequence[int], witness: Any) -> R1CSStats:
        """Synthesize outside the proving flow; returns stats or raises."""
        builder = CircuitBuilder()
        self.synthesize(builder, public_input, witness)
        _validate_publics(builder, public_input)
        return builder.stats()


def _validate_publics(builder: CircuitBuilder, public_input: Sequence[int]) -> None:
    declared = builder.cs.public_values()
    expected = tuple(v % MODULUS for v in public_input)
    if declared != expected:
        raise SynthesisError(
            "circuit did not allocate the declared public input: "
            f"declared {len(declared)} values, expected {len(expected)}"
        )
