"""Deterministic, seeded fault injection for the network simulator.

The paper's robustness claims (Δ-synchrony of §5.2, ceasing when
certificates miss their submission window, recovery after partition) are
only meaningful against an imperfect network.  :class:`FaultPlan` supplies
that imperfection *deterministically*: every decision — drop, duplicate,
reorder (extra jitter), delay spike — is derived by hashing
``(seed, src, dst, n)`` exactly like
:class:`~repro.network.simulator.LatencyModel` derives latencies, so the
same seed reproduces a byte-identical fault schedule on every run, with no
global RNG involved.

Scheduled partitions are explicit, not sampled: :func:`partition` severs
every link crossing its group boundary for a closed interval of simulated
time, and heals automatically when the clock passes ``until_t``.

The simulator accounts every fired fault on
``repro_network_faults_total{kind}`` and every fault-induced drop on
``repro_network_dropped_total{reason="fault"}`` (see
``docs/ROBUSTNESS.md`` and ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import hash_bytes
from repro.errors import NetworkError

#: Fraction granularity: each fault kind consumes a 6-byte slice of the
#: 32-byte link digest, so one hash funds all five decision draws.
_SLICE = 6
_DENOM = float(1 << (8 * _SLICE))


def _fractions(seed: bytes, src: str, dst: str, n: int) -> tuple[float, ...]:
    """Five independent uniform draws for the ``n``-th message on a link."""
    material = seed + src.encode() + b"->" + dst.encode() + n.to_bytes(8, "little")
    digest = hash_bytes(material, b"net/fault")
    return tuple(
        int.from_bytes(digest[i * _SLICE : (i + 1) * _SLICE], "little") / _DENOM
        for i in range(5)
    )


@dataclass(frozen=True)
class Partition:
    """A scheduled network partition: groups cannot talk across the split.

    A link is severed while ``from_t <= now < until_t`` iff its endpoints
    sit in *different* groups.  Nodes not named in any group are unaffected
    (they keep talking to everyone), which lets a plan isolate a subset
    without enumerating the whole deployment.
    """

    groups: tuple[frozenset[str], ...]
    from_t: float
    until_t: float

    def __post_init__(self) -> None:
        if self.until_t < self.from_t:
            raise NetworkError("partition heals before it starts")

    def _group_of(self, name: str) -> int | None:
        for i, group in enumerate(self.groups):
            if name in group:
                return i
        return None

    def severs(self, src: str, dst: str, now: float) -> bool:
        """True when this partition blocks ``src -> dst`` at time ``now``."""
        if not self.from_t <= now < self.until_t:
            return False
        a, b = self._group_of(src), self._group_of(dst)
        return a is not None and b is not None and a != b


def partition(
    groups: tuple[tuple[str, ...] | frozenset[str], ...] | list,
    from_t: float,
    until_t: float,
) -> Partition:
    """Build a :class:`Partition` from plain name tuples."""
    return Partition(
        groups=tuple(frozenset(group) for group in groups),
        from_t=from_t,
        until_t=until_t,
    )


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one scheduled message."""

    #: False when the message is lost (sampled drop or partition).
    deliver: bool
    #: Total deliveries when not dropped (2 when duplicated).
    copies: int
    #: Extra latency added on top of the link sample (reorder + spike).
    extra_delay: float
    #: The fault kinds that fired, in evaluation order.
    kinds: tuple[str, ...]

    def encode(self) -> bytes:
        """A canonical byte form (the schedule-reproducibility unit)."""
        return (
            f"{int(self.deliver)}|{self.copies}|{self.extra_delay!r}|"
            f"{','.join(self.kinds)}".encode()
        )


#: The decision for a message no plan touches.
CLEAN = FaultDecision(deliver=True, copies=1, extra_delay=0.0, kinds=())


@dataclass
class FaultPlan:
    """A seeded recipe of network misbehaviour.

    Rates are per-message probabilities in ``[0, 1]``; ``link_drop`` maps a
    specific ``(src, dst)`` link to a drop rate overriding the global one
    (the per-link knob of adversarial targeting).  ``reorder_jitter`` is the
    *maximum* extra delay a reordered message picks up (the actual amount is
    a further deterministic draw), ``spike_delay`` is the fixed extra delay
    of a delay spike.  All sampling state is a per-link message counter, so
    two identically seeded plans replaying the same message sequence make
    byte-identical decisions.
    """

    seed: bytes = b"faults"
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_jitter: float = 0.5
    spike_rate: float = 0.0
    spike_delay: float = 2.0
    partitions: tuple[Partition, ...] = ()
    link_drop: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.partitions = tuple(self.partitions)
        for name in ("drop_rate", "duplicate_rate", "reorder_rate", "spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise NetworkError(f"{name} must be within [0, 1], got {rate}")
        self._counters: dict[tuple[str, str], int] = {}

    # -- schedule ------------------------------------------------------------------

    @property
    def healed_at(self) -> float:
        """The time every scheduled partition has healed by."""
        return max((p.until_t for p in self.partitions), default=0.0)

    def severed(self, src: str, dst: str, now: float) -> bool:
        """True when any scheduled partition blocks the link at ``now``."""
        return any(p.severs(src, dst, now) for p in self.partitions)

    def decide(self, src: str, dst: str, now: float) -> FaultDecision:
        """The deterministic fault decision for the next message on a link.

        Advances the link's message counter (mirroring
        :meth:`LatencyModel.sample`), so decisions depend only on the seed
        and the per-link message ordinal — never on wall time or global RNG.
        """
        n = self._counters.get((src, dst), 0)
        self._counters[(src, dst)] = n + 1
        if self.severed(src, dst, now):
            return FaultDecision(
                deliver=False, copies=0, extra_delay=0.0, kinds=("partition",)
            )
        f_drop, f_dup, f_reorder, f_jitter, f_spike = _fractions(
            self.seed, src, dst, n
        )
        if f_drop < self.link_drop.get((src, dst), self.drop_rate):
            return FaultDecision(
                deliver=False, copies=0, extra_delay=0.0, kinds=("drop",)
            )
        kinds: list[str] = []
        copies = 1
        extra = 0.0
        if f_dup < self.duplicate_rate:
            copies = 2
            kinds.append("duplicate")
        if f_reorder < self.reorder_rate:
            extra += self.reorder_jitter * f_jitter
            kinds.append("reorder")
        if f_spike < self.spike_rate:
            extra += self.spike_delay
            kinds.append("delay_spike")
        if not kinds:
            return CLEAN
        return FaultDecision(
            deliver=True, copies=copies, extra_delay=extra, kinds=tuple(kinds)
        )
