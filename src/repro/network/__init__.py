"""Deterministic discrete-event network simulation substrate."""

from repro.network.simulator import LatencyModel, NetworkSimulator

__all__ = ["LatencyModel", "NetworkSimulator"]
