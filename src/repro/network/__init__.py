"""Deterministic discrete-event network simulation substrate."""

from repro.network.faults import (
    CLEAN,
    FaultDecision,
    FaultPlan,
    Partition,
    partition,
)
from repro.network.simulator import (
    NEVER,
    HandlerError,
    LatencyModel,
    NetworkSimulator,
)

__all__ = [
    "CLEAN",
    "FaultDecision",
    "FaultPlan",
    "HandlerError",
    "LatencyModel",
    "NEVER",
    "NetworkSimulator",
    "Partition",
    "partition",
]
