"""A small deterministic discrete-event network simulator.

Used by liveness-style experiments (certificate submission windows, ceasing
under delay — bench Q4) and by the chaos deployments of
:mod:`repro.scenarios.multi_node`: messages between nodes are delivered
after per-link latencies, and the simulation clock advances event by event.
Determinism comes from explicit seeds — no wall-clock, no global RNG.

An optional :class:`~repro.network.faults.FaultPlan` injects deterministic
misbehaviour inside :meth:`NetworkSimulator.send` / ``broadcast``: sampled
drops, duplication, reordering (extra jitter), delay spikes and scheduled
partitions (see ``docs/ROBUSTNESS.md``).

Traffic is observable on the process-wide metrics registry:
``repro_network_messages_total{kind}`` counts sends and broadcasts,
``repro_network_latency_seconds`` is a histogram of sampled link latencies
(simulated seconds, not wall time), ``repro_network_events_total`` counts
delivered events, ``repro_network_faults_total{kind}`` counts injected
faults by kind, ``repro_network_handler_errors_total`` counts deliveries
whose handler raised, and ``repro_network_dropped_total{reason}`` counts
undeliverable messages — ``reason="unknown_dst"`` for messages addressed to
unregistered nodes (which also raise
:class:`~repro.errors.UnknownNetworkNode`) and ``reason="fault"`` for
fault-injected losses.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import observability
from repro.crypto.hashing import hash_bytes
from repro.errors import UnknownNetworkNode
from repro.network.faults import FaultDecision, FaultPlan

_REGISTRY = observability.registry()
_MESSAGES = _REGISTRY.counter(
    "repro_network_messages_total",
    "messages scheduled on the network simulator",
    labelnames=("kind",),
)
_MSG_SEND = _MESSAGES.labels(kind="send")
_MSG_BROADCAST = _MESSAGES.labels(kind="broadcast")
_DROPPED = _REGISTRY.counter(
    "repro_network_dropped_total",
    "messages that could not be delivered, by reason",
    labelnames=("reason",),
)
_DROPPED_UNKNOWN = _DROPPED.labels(reason="unknown_dst")
_DROPPED_FAULT = _DROPPED.labels(reason="fault")
_FAULTS = _REGISTRY.counter(
    "repro_network_faults_total",
    "injected network faults fired, by kind",
    labelnames=("kind",),
)
_HANDLER_ERRORS = _REGISTRY.counter(
    "repro_network_handler_errors_total",
    "deliveries whose receiving handler raised",
).labels()
_EVENTS = _REGISTRY.counter(
    "repro_network_events_total",
    "events delivered by the simulator loop",
).labels()
_LATENCY = _REGISTRY.histogram(
    "repro_network_latency_seconds",
    "sampled link latencies in simulated seconds",
).labels()

#: Delivery time reported for a message lost to fault injection.
NEVER = math.inf


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    deliver: Callable[[], None] = field(compare=False)


@dataclass(frozen=True)
class HandlerError:
    """One delivery whose receiving handler raised (kept, not re-raised)."""

    time: float
    src: str
    dst: str
    error: Exception


class LatencyModel:
    """Deterministic pseudo-random link latencies.

    Latency for the ``n``-th message on a link is derived by hashing
    ``(seed, src, dst, n)`` into ``[base, base + jitter]``.
    """

    def __init__(self, base: float = 0.05, jitter: float = 0.1, seed: bytes = b"net") -> None:
        self.base = base
        self.jitter = jitter
        self.seed = seed
        self._counters: dict[tuple[str, str], int] = {}

    def sample(self, src: str, dst: str) -> float:
        """The next latency sample for the (src, dst) link."""
        n = self._counters.get((src, dst), 0)
        self._counters[(src, dst)] = n + 1
        material = self.seed + src.encode() + b"->" + dst.encode() + n.to_bytes(8, "little")
        digest = hash_bytes(material, b"net/latency")
        fraction = int.from_bytes(digest[:8], "little") / float(1 << 64)
        return self.base + self.jitter * fraction


class NetworkSimulator:
    """An event loop delivering messages between registered handlers.

    ``faults`` attaches a deterministic :class:`FaultPlan` consulted on
    every ``send``; without one the network is perfect.  A handler that
    raises during delivery does **not** poison the event loop: the error is
    recorded on :attr:`handler_errors` (and counted) and the queue keeps
    draining — pass ``capture_handler_errors=False`` to restore the old
    propagate-and-abort behaviour.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        faults: FaultPlan | None = None,
        capture_handler_errors: bool = True,
    ) -> None:
        self.latency = latency or LatencyModel()
        self.faults = faults
        self.capture_handler_errors = capture_handler_errors
        self.clock = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        self.delivered = 0
        self._sends = 0
        #: Deliveries whose handler raised (in delivery order).
        self.handler_errors: list[HandlerError] = []
        #: Every non-clean fault decision as ``(send ordinal, time, src,
        #: dst, decision)``, in scheduling order — the byte-comparable fault
        #: schedule (see ``FaultDecision.encode``).
        self.fault_log: list[tuple[int, float, str, str, FaultDecision]] = []

    def register(self, name: str, handler: Callable[[str, Any], None]) -> None:
        """Register a node: ``handler(sender_name, message)``."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        """Remove a node; queued messages to it drop as ``unknown_dst``."""
        self._handlers.pop(name, None)

    @property
    def nodes(self) -> list[str]:
        """Registered node names."""
        return list(self._handlers)

    def fault_schedule(self) -> bytes:
        """Canonical byte encoding of every fault fired so far.

        Two simulators driven by identically seeded plans over the same
        message sequence produce identical schedules — the determinism the
        chaos tests pin byte-for-byte.
        """
        return b";".join(
            f"{n}|{t!r}|{src}|{dst}|".encode() + decision.encode()
            for n, t, src, dst, decision in self.fault_log
        )

    def send(self, src: str, dst: str, message: Any) -> float:
        """Schedule a point-to-point message; returns its delivery time.

        Raises :class:`~repro.errors.UnknownNetworkNode` (a ``KeyError``
        subclass, for backward compatibility) if ``dst`` was never
        registered; the drop is counted on
        ``repro_network_dropped_total{reason="unknown_dst"}``.  With a fault
        plan attached the message may be dropped (returns :data:`NEVER`),
        duplicated or delayed; injected faults are counted by kind on
        ``repro_network_faults_total``.
        """
        if dst not in self._handlers:
            _DROPPED_UNKNOWN.inc()
            raise UnknownNetworkNode(f"unknown destination node {dst!r}")
        ordinal = self._sends
        self._sends += 1
        decision = (
            self.faults.decide(src, dst, self.clock)
            if self.faults is not None
            else None
        )
        sample = self.latency.sample(src, dst)
        _MSG_SEND.inc()
        _LATENCY.observe(sample)
        if decision is not None and decision.kinds:
            self.fault_log.append((ordinal, self.clock, src, dst, decision))
            for kind in decision.kinds:
                _FAULTS.labels(kind=kind).inc()
        if decision is not None and not decision.deliver:
            _DROPPED_FAULT.inc()
            return NEVER
        extra = decision.extra_delay if decision is not None else 0.0
        at = self.clock + sample + extra
        self.schedule_at(at, lambda: self._deliver(src, dst, message))
        if decision is not None and decision.copies > 1:
            # the duplicate rides its own (deterministic) latency sample,
            # so the two copies arrive at distinct times
            for _ in range(decision.copies - 1):
                dup_at = self.clock + self.latency.sample(src, dst) + extra
                self.schedule_at(dup_at, lambda: self._deliver(src, dst, message))
        return at

    def broadcast(self, src: str, message: Any) -> list[float]:
        """Send to every registered node except the sender."""
        _MSG_BROADCAST.inc()
        return [
            self.send(src, dst, message) for dst in list(self._handlers) if dst != src
        ]

    def _deliver(self, src: str, dst: str, message: Any) -> None:
        """Invoke a handler, isolating the loop from its failures."""
        handler = self._handlers.get(dst)
        if handler is None:
            # the node unregistered (e.g. crashed) after scheduling
            _DROPPED_UNKNOWN.inc()
            return
        try:
            handler(src, message)
        except Exception as exc:
            if not self.capture_handler_errors:
                raise
            self.handler_errors.append(
                HandlerError(time=self.clock, src=src, dst=dst, error=exc)
            )
            _HANDLER_ERRORS.inc()

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule an arbitrary action at an absolute time."""
        if time < self.clock:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, _Event(time, next(self._sequence), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule an action ``delay`` after the current clock."""
        self.schedule_at(self.clock + delay, action)

    def step(self) -> bool:
        """Deliver the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock = event.time
        event.deliver()
        self.delivered += 1
        _EVENTS.inc()
        return True

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain the queue (optionally up to time ``until``); returns events run."""
        count = 0
        while self._queue and count < max_events:
            if until is not None and self._queue[0].time > until:
                break
            self.step()
            count += 1
        if until is not None and self.clock < until:
            self.clock = until
        return count

    def advance(self, delay: float) -> int:
        """Move the clock forward by ``delay``, delivering everything due.

        Unlike :meth:`run` with no bound, this advances time even when the
        queue is empty — which is what lets scheduled partitions heal in a
        quiet (fully dropped) network.
        """
        return self.run(until=self.clock + delay)
