"""A small deterministic discrete-event network simulator.

Used by liveness-style experiments (certificate submission windows, ceasing
under delay — bench Q4): messages between nodes are delivered after
per-link latencies, and the simulation clock advances event by event.
Determinism comes from explicit seeds — no wall-clock, no global RNG.

Traffic is observable on the process-wide metrics registry:
``repro_network_messages_total{kind}`` counts sends and broadcasts,
``repro_network_latency_seconds`` is a histogram of sampled link latencies
(simulated seconds, not wall time), ``repro_network_events_total`` counts
delivered events and ``repro_network_dropped_total`` counts messages
addressed to unregistered nodes (which also raise
:class:`~repro.errors.UnknownNetworkNode`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro import observability
from repro.crypto.hashing import hash_bytes
from repro.errors import UnknownNetworkNode

_REGISTRY = observability.registry()
_MESSAGES = _REGISTRY.counter(
    "repro_network_messages_total",
    "messages scheduled on the network simulator",
    labelnames=("kind",),
)
_MSG_SEND = _MESSAGES.labels(kind="send")
_MSG_BROADCAST = _MESSAGES.labels(kind="broadcast")
_DROPPED = _REGISTRY.counter(
    "repro_network_dropped_total",
    "messages addressed to unregistered nodes",
).labels()
_EVENTS = _REGISTRY.counter(
    "repro_network_events_total",
    "events delivered by the simulator loop",
).labels()
_LATENCY = _REGISTRY.histogram(
    "repro_network_latency_seconds",
    "sampled link latencies in simulated seconds",
).labels()


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    deliver: Callable[[], None] = field(compare=False)


class LatencyModel:
    """Deterministic pseudo-random link latencies.

    Latency for the ``n``-th message on a link is derived by hashing
    ``(seed, src, dst, n)`` into ``[base, base + jitter]``.
    """

    def __init__(self, base: float = 0.05, jitter: float = 0.1, seed: bytes = b"net") -> None:
        self.base = base
        self.jitter = jitter
        self.seed = seed
        self._counters: dict[tuple[str, str], int] = {}

    def sample(self, src: str, dst: str) -> float:
        """The next latency sample for the (src, dst) link."""
        n = self._counters.get((src, dst), 0)
        self._counters[(src, dst)] = n + 1
        material = self.seed + src.encode() + b"->" + dst.encode() + n.to_bytes(8, "little")
        digest = hash_bytes(material, b"net/latency")
        fraction = int.from_bytes(digest[:8], "little") / float(1 << 64)
        return self.base + self.jitter * fraction


class NetworkSimulator:
    """An event loop delivering messages between registered handlers."""

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency or LatencyModel()
        self.clock = 0.0
        self._queue: list[_Event] = []
        self._sequence = itertools.count()
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        self.delivered = 0

    def register(self, name: str, handler: Callable[[str, Any], None]) -> None:
        """Register a node: ``handler(sender_name, message)``."""
        self._handlers[name] = handler

    @property
    def nodes(self) -> list[str]:
        """Registered node names."""
        return list(self._handlers)

    def send(self, src: str, dst: str, message: Any) -> float:
        """Schedule a point-to-point message; returns its delivery time.

        Raises :class:`~repro.errors.UnknownNetworkNode` (a ``KeyError``
        subclass, for backward compatibility) if ``dst`` was never
        registered; the drop is counted on ``repro_network_dropped_total``.
        """
        if dst not in self._handlers:
            _DROPPED.inc()
            raise UnknownNetworkNode(f"unknown destination node {dst!r}")
        sample = self.latency.sample(src, dst)
        _MSG_SEND.inc()
        _LATENCY.observe(sample)
        at = self.clock + sample
        self.schedule_at(at, lambda: self._handlers[dst](src, message))
        return at

    def broadcast(self, src: str, message: Any) -> list[float]:
        """Send to every registered node except the sender."""
        _MSG_BROADCAST.inc()
        return [
            self.send(src, dst, message) for dst in self._handlers if dst != src
        ]

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule an arbitrary action at an absolute time."""
        if time < self.clock:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, _Event(time, next(self._sequence), action))

    def schedule_after(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule an action ``delay`` after the current clock."""
        self.schedule_at(self.clock + delay, action)

    def step(self) -> bool:
        """Deliver the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self.clock = event.time
        event.deliver()
        self.delivered += 1
        _EVENTS.inc()
        return True

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> int:
        """Drain the queue (optionally up to time ``until``); returns events run."""
        count = 0
        while self._queue and count < max_events:
            if until is not None and self._queue[0].time > until:
                break
            self.step()
            count += 1
        if until is not None and self.clock < until:
            self.clock = until
        return count
