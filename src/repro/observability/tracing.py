"""Span-based tracing over the metrics registry.

A :class:`Span` is a context manager measuring one named stage of work —
wall time (``perf_counter``), CPU time (``process_time``) and the *metric
deltas* the stage caused: every registry counter that moved while the span
was open is recorded with how far it moved.  Spans nest; entering a span
while another is open attaches it as a child, so a certified epoch shows up
as one root ``epoch/prove`` span with ``prove/base`` and
``prove/merge_level`` children underneath.

Every finished span also feeds the ``repro_span_seconds`` histogram
(labeled by span name) in the owning registry, which is how span timings
appear in the Prometheus/JSON exporters next to plain counters.

When the registry is disabled, :meth:`Tracer.span` returns a shared no-op
span — no allocation, no clock reads — so tracing obeys the same
zero-overhead-when-off contract as the instruments.

The tracer keeps the most recent finished *root* spans (bounded deque); a
telemetry snapshot serializes them with :meth:`Span.to_dict`.  Like the
registry, the tracer is per-process and not thread-safe.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any

from repro.observability.registry import MetricsRegistry

#: How many finished root spans the tracer retains for telemetry snapshots.
MAX_ROOT_SPANS: int = 256


class Span:
    """One timed, nested stage of work (use as a context manager)."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_seconds",
        "cpu_seconds",
        "metric_deltas",
        "_tracer",
        "_has_parent",
        "_start_wall",
        "_start_cpu",
        "_counters_before",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.metric_deltas: dict[str, int | float] = {}
        self._tracer = tracer
        self._has_parent = False
        self._start_wall = 0.0
        self._start_cpu = 0.0
        self._counters_before: dict[str, int | float] = {}

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._counters_before = self._tracer.registry.counter_samples()
        self._start_cpu = time.process_time()
        self._start_wall = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.wall_seconds = time.perf_counter() - self._start_wall
        self.cpu_seconds = time.process_time() - self._start_cpu
        after = self._tracer.registry.counter_samples()
        before = self._counters_before
        self.metric_deltas = {
            key: value - before.get(key, 0)
            for key, value in after.items()
            if value != before.get(key, 0)
        }
        self._counters_before = {}
        self._tracer._pop(self)

    def to_dict(self) -> dict:
        """JSON-serializable span tree (the telemetry/export shape)."""
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "attrs": dict(self.attrs),
            "metric_deltas": dict(self.metric_deltas),
            "children": [child.to_dict() for child in self.children],
        }


class _NoopSpan:
    """Shared do-nothing span handed out while the registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans, tracks the active stack and retains finished roots."""

    def __init__(self, registry: MetricsRegistry, max_roots: int = MAX_ROOT_SPANS) -> None:
        self.registry = registry
        self.roots: deque[Span] = deque(maxlen=max_roots)
        self._stack: list[Span] = []
        self._span_hist = registry.histogram(
            "repro_span_seconds",
            "wall seconds of finished tracer spans",
            labelnames=("span",),
        )

    def span(self, name: str, **attrs: Any) -> Span | _NoopSpan:
        """A new span named ``name``; a shared no-op when tracing is off."""
        if not self.registry.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop retained roots and any (leaked) open spans."""
        self.roots.clear()
        self._stack.clear()

    # -- span lifecycle (called by Span.__enter__/__exit__) ----------------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
            span._has_parent = True
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if not span._has_parent:
            self.roots.append(span)
        self._span_hist.labels(span=span.name).observe(span.wall_seconds)
