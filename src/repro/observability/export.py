"""Exporters: JSON snapshot, Prometheus text format, human table.

All three render the same registry walk, and :func:`flatten` /
:func:`parse_prometheus` produce the identical ``name{labels}`` -> value
mapping from either side, which is what lets the test-suite (and the smoke
gate) assert the exporters agree on every series instead of eyeballing two
formats.
"""

from __future__ import annotations

import json

from repro.observability.registry import (
    HistogramSeries,
    MetricsRegistry,
    format_bound,
    format_value,
    sample_key,
)


def flatten(registry: MetricsRegistry) -> dict[str, float]:
    """Every series as a flat ``name{labels}`` -> float map.

    Histogram series expand into the Prometheus triplet:
    ``name_bucket{...,le="..."}`` per cumulative bucket, ``name_sum`` and
    ``name_count``.
    """
    samples: dict[str, float] = {}
    for metric in registry.metrics():
        for series in metric.series():
            if isinstance(series, HistogramSeries):
                for bound, cum in series.cumulative():
                    key = sample_key(
                        f"{metric.name}_bucket",
                        metric.labelnames,
                        series.labels,
                        le=format_bound(bound),
                    )
                    samples[key] = float(cum)
                samples[
                    sample_key(f"{metric.name}_sum", metric.labelnames, series.labels)
                ] = float(series.sum)
                samples[
                    sample_key(f"{metric.name}_count", metric.labelnames, series.labels)
                ] = float(series.count)
            else:
                samples[
                    sample_key(metric.name, metric.labelnames, series.labels)
                ] = float(series.value)
    return samples


def to_json(registry: MetricsRegistry, indent: int | None = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=False)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format (0.0.4)."""
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for series in metric.series():
            if isinstance(series, HistogramSeries):
                for bound, cum in series.cumulative():
                    key = sample_key(
                        f"{metric.name}_bucket",
                        metric.labelnames,
                        series.labels,
                        le=format_bound(bound),
                    )
                    lines.append(f"{key} {format_value(cum)}")
                sum_key = sample_key(
                    f"{metric.name}_sum", metric.labelnames, series.labels
                )
                lines.append(f"{sum_key} {format_value(series.sum)}")
                count_key = sample_key(
                    f"{metric.name}_count", metric.labelnames, series.labels
                )
                lines.append(f"{count_key} {format_value(series.count)}")
            else:
                key = sample_key(metric.name, metric.labelnames, series.labels)
                lines.append(f"{key} {format_value(series.value)}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back into the :func:`flatten` sample map.

    Used by tests and the smoke gate to verify exporter round-trips; only
    the subset of the format :func:`to_prometheus` emits is supported.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


def to_table(registry: MetricsRegistry) -> str:
    """A human-readable metrics table (the ``repro.cli metrics`` view).

    Counters and gauges print one row per series; histograms print
    count/sum/mean so latency distributions stay readable in a terminal.
    """
    rows: list[tuple[str, str, str]] = []
    for metric in registry.metrics():
        for series in metric.series():
            labels = ",".join(
                f"{k}={v}" for k, v in zip(metric.labelnames, series.labels)
            )
            if isinstance(series, HistogramSeries):
                mean = series.sum / series.count if series.count else 0.0
                rendered = (
                    f"count={series.count} sum={series.sum:.6f}s mean={mean:.6f}s"
                )
            else:
                rendered = format_value(series.value)
            rows.append((metric.name, labels, rendered))
    if not rows:
        return "(no metrics recorded)\n"
    name_w = max(len(r[0]) for r in rows)
    label_w = max(len(r[1]) for r in rows)
    lines = [
        f"{'metric'.ljust(name_w)}  {'labels'.ljust(label_w)}  value",
        f"{'-' * name_w}  {'-' * label_w}  -----",
    ]
    for name, labels, rendered in rows:
        lines.append(f"{name.ljust(name_w)}  {labels.ljust(label_w)}  {rendered}")
    return "\n".join(lines) + "\n"
