"""Unified observability: one registry, one tracer, one stats API.

This package is the single place the whole stack reports cost to:

* :func:`registry` — the process-wide :class:`MetricsRegistry` every layer
  (MiMC, prover pool, mainchain, mempool, network simulator, Latus nodes)
  declares its counters/gauges/histograms on;
* :func:`tracer` — the process-wide :class:`Tracer` whose spans time the
  proving pipeline (base proofs, merge levels, whole epochs);
* :mod:`repro.observability.export` — JSON snapshot, Prometheus text and a
  human table over the same registry walk (also surfaced as
  ``python -m repro.cli metrics``).

Conventions, the metric inventory and a how-to-add-a-counter guide live in
``docs/OBSERVABILITY.md``.

Observability is **on by default** and can be switched off globally::

    from repro import observability
    observability.disable()      # every instrument becomes an early return
    observability.enable()
    observability.reset()        # zero all series, drop retained spans

or at import time with ``REPRO_OBSERVABILITY=0`` in the environment (what
the disabled-overhead benchmarks use).  The global registry object is
created once per process and never replaced, so modules may safely bind
series at import; construct private :class:`MetricsRegistry` /
:class:`Tracer` instances for isolated tests.
"""

from __future__ import annotations

import os

from repro.observability.registry import (
    Counter,
    CounterSeries,
    DEFAULT_BUCKETS,
    Gauge,
    GaugeSeries,
    Histogram,
    HistogramSeries,
    MetricsRegistry,
)
from repro.observability.tracing import NOOP_SPAN, Span, Tracer
from repro.observability import export

_ENABLED_AT_IMPORT = os.environ.get("REPRO_OBSERVABILITY", "1") not in ("0", "false", "off")

#: The one process-wide registry.  Never rebound — bind series freely.
_REGISTRY = MetricsRegistry(enabled=_ENABLED_AT_IMPORT)

#: The one process-wide tracer, recording into :data:`_REGISTRY`.
_TRACER = Tracer(_REGISTRY)


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def tracer() -> Tracer:
    """The process-wide tracer (spans record into the global registry)."""
    return _TRACER


def enabled() -> bool:
    """Whether the global observability layer is recording."""
    return _REGISTRY.enabled


def enable() -> None:
    """Turn global metric recording and tracing on."""
    _REGISTRY.enable()


def disable() -> None:
    """Turn the global layer off (instruments become cheap no-ops)."""
    _REGISTRY.disable()


def reset() -> None:
    """Zero every global metric series and drop retained spans.

    The benchmark/test isolation hook: series objects stay valid (bound
    references keep working), only their values reset.
    """
    _REGISTRY.reset()
    _TRACER.reset()


def snapshot() -> dict:
    """JSON-serializable dump of the global registry plus finished spans."""
    return {
        "metrics": _REGISTRY.snapshot(),
        "spans": [span.to_dict() for span in _TRACER.roots],
    }


__all__ = [
    "Counter",
    "CounterSeries",
    "DEFAULT_BUCKETS",
    "Gauge",
    "GaugeSeries",
    "Histogram",
    "HistogramSeries",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "export",
    "registry",
    "reset",
    "snapshot",
    "tracer",
]
