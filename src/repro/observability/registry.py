"""The process-wide metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` is the single source of truth for "what did
this run cost" across the whole stack (see ``docs/OBSERVABILITY.md`` for the
naming conventions and the per-layer metric inventory).  Design goals, in
order:

1. **Cheap hot paths.**  The MiMC compression counter fires on every Merkle
   node hash, so the per-call cost must stay comparable to a bare attribute
   increment.  Instruments therefore hand out *bound series* objects
   (:meth:`Counter.labels`) that callers keep in module-level names; a bound
   ``inc()`` is one attribute load, one branch and one in-place add.
2. **Free when disabled.**  ``registry.disable()`` turns every instrument
   method into an early return — no dict lookup, no allocation, nothing for
   the GC (property-tested by ``tests/test_observability.py``).
3. **Labeled series.**  A metric declares its label names once; each
   distinct label-value combination is an independent series, created on
   first use and cached forever (series identity is stable, so hot callers
   bind once).

The registry is deliberately not thread-safe beyond CPython's natural
atomicity for ``+=`` on its own lock; the reproduction is single-threaded
per process, and pool workers each carry their own per-process registry
(worker-side hash ops are folded back into the parent through
``ProveResult`` timings, not through this registry).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.errors import ObservabilityError

#: Default histogram buckets, tuned for sub-second protocol operations
#: (span walls, network latencies).  Upper bounds in seconds; +Inf implied.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labelnames: tuple[str, ...], labels: dict[str, str]) -> tuple[str, ...]:
    """Validate ``labels`` against the declared names; return the value tuple."""
    if set(labels) != set(labelnames):
        raise ObservabilityError(
            f"labels {sorted(labels)} do not match declared names {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Series:
    """Base class for one labeled series of a metric (bound instrument)."""

    __slots__ = ("_registry", "labels")

    def __init__(self, registry: "MetricsRegistry", labels: tuple[str, ...]) -> None:
        self._registry = registry
        self.labels = labels


class CounterSeries(_Series):
    """A monotonically increasing series; bind once, ``inc()`` in the hot path."""

    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry", labels: tuple[str, ...]) -> None:
        super().__init__(registry, labels)
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0); no-op while the registry is disabled."""
        if self._registry._enabled:
            if amount < 0:
                raise ObservabilityError("counters can only increase")
            self.value += amount

    def reset(self) -> None:
        self.value = 0


class GaugeSeries(_Series):
    """A series that can go up and down (sizes, occupancies, worker counts)."""

    __slots__ = ("value",)

    def __init__(self, registry: "MetricsRegistry", labels: tuple[str, ...]) -> None:
        super().__init__(registry, labels)
        self.value = 0

    def set(self, value: int | float) -> None:
        if self._registry._enabled:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        if self._registry._enabled:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        if self._registry._enabled:
            self.value -= amount

    def reset(self) -> None:
        self.value = 0


class HistogramSeries(_Series):
    """Cumulative-bucket histogram series (Prometheus semantics)."""

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        registry: "MetricsRegistry",
        labels: tuple[str, ...],
        buckets: tuple[float, ...],
    ) -> None:
        super().__init__(registry, labels)
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation; no-op while the registry is disabled."""
        if not self._registry._enabled:
            return
        i = 0
        buckets = self.buckets
        while i < len(buckets) and value > buckets[i]:
            i += 1
        self.bucket_counts[i] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``+Inf``."""
        out = []
        running = 0
        for bound, n in zip((*self.buckets, math.inf), self.bucket_counts):
            running += n
            out.append((bound, running))
        return out

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0


class _Metric:
    """A named family of series sharing one type, help string and label names."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, help: str, labelnames: tuple[str, ...]
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._series: dict[tuple[str, ...], _Series] = {}
        if not self.labelnames:
            self._series[()] = self._make_series(())

    def _make_series(self, key: tuple[str, ...]) -> _Series:
        raise NotImplementedError

    def labels(self, **labels: str) -> _Series:
        """The series bound to these label values (created on first use).

        Hot paths should call this once at module/object scope and keep the
        returned series, not per operation.
        """
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = self._make_series(key)
        return series

    def series(self) -> Iterator[_Series]:
        """All existing series of this metric (stable insertion order)."""
        return iter(self._series.values())

    def reset(self) -> None:
        for series in self._series.values():
            series.reset()

    def _default(self) -> _Series:
        if self.labelnames:
            raise ObservabilityError(
                f"metric '{self.name}' declares labels {self.labelnames}; "
                "use .labels(...) to select a series"
            )
        return self._series[()]


class Counter(_Metric):
    kind = "counter"

    def _make_series(self, key: tuple[str, ...]) -> CounterSeries:
        return CounterSeries(self._registry, key)

    def inc(self, amount: int | float = 1) -> None:
        """Increment the label-less default series."""
        self._default().inc(amount)

    def value(self, **labels: str) -> int | float:
        """Current value of one series (0 if it was never touched)."""
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        return series.value if series is not None else 0


class Gauge(_Metric):
    kind = "gauge"

    def _make_series(self, key: tuple[str, ...]) -> GaugeSeries:
        return GaugeSeries(self._registry, key)

    def set(self, value: int | float) -> None:
        self._default().set(value)

    def inc(self, amount: int | float = 1) -> None:
        self._default().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        self._default().dec(amount)

    def value(self, **labels: str) -> int | float:
        key = _label_key(self.labelnames, labels)
        series = self._series.get(key)
        return series.value if series is not None else 0


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.buckets = tuple(sorted(buckets))
        super().__init__(registry, name, help, labelnames)

    def _make_series(self, key: tuple[str, ...]) -> HistogramSeries:
        return HistogramSeries(self._registry, key, self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)


class MetricsRegistry:
    """Get-or-create home for every metric; one instance per process.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing metric (so independent modules can
    declare shared metrics without coordination), but re-declaring a name
    with a different type or label set raises
    :class:`~repro.errors.ObservabilityError`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._metrics: dict[str, _Metric] = {}

    # -- lifecycle -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether instruments record anything at all."""
        return self._enabled

    def enable(self) -> None:
        """Turn recording on (instruments resume from their current values)."""
        self._enabled = True

    def disable(self) -> None:
        """Turn every instrument into a no-op (zero per-call allocation)."""
        self._enabled = False

    def reset(self) -> None:
        """Zero every series of every metric (benchmark/test isolation hook)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- declaration -----------------------------------------------------------

    def _get_or_create(
        self, cls: type[_Metric], name: str, help: str, labelnames: tuple[str, ...], **kw
    ) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                raise ObservabilityError(
                    f"metric '{name}' already registered as {existing.kind}"
                    f"{existing.labelnames}; cannot redeclare as {cls.kind}"
                    f"{tuple(labelnames)}"
                )
            return existing
        metric = cls(self, name, help, tuple(labelnames), **kw)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram (``buckets`` applies only on creation)."""
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    # -- introspection ----------------------------------------------------------

    def metrics(self) -> list[_Metric]:
        """Every registered metric, in registration order."""
        return list(self._metrics.values())

    def get(self, name: str) -> _Metric | None:
        """Look a metric up by name without creating it."""
        return self._metrics.get(name)

    def counter_samples(self) -> dict[str, int | float]:
        """Flattened ``name{labels}`` -> value map of counter series only.

        Used by the tracer to compute cheap per-span metric deltas.
        """
        samples: dict[str, int | float] = {}
        for metric in self._metrics.values():
            if not isinstance(metric, Counter):
                continue
            for series in metric.series():
                samples[sample_key(metric.name, metric.labelnames, series.labels)] = (
                    series.value
                )
        return samples

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every metric and series."""
        out = []
        for metric in self._metrics.values():
            series_out = []
            for series in metric.series():
                entry: dict = {
                    "labels": dict(zip(metric.labelnames, series.labels))
                }
                if isinstance(series, HistogramSeries):
                    entry["count"] = series.count
                    entry["sum"] = series.sum
                    entry["buckets"] = [
                        [format_bound(bound), n] for bound, n in series.cumulative()
                    ]
                else:
                    entry["value"] = series.value
                series_out.append(entry)
            out.append(
                {
                    "name": metric.name,
                    "type": metric.kind,
                    "help": metric.help,
                    "labelnames": list(metric.labelnames),
                    "series": series_out,
                }
            )
        return {"enabled": self._enabled, "metrics": out}


def format_bound(bound: float) -> str:
    """Prometheus-style bucket upper bound: ``+Inf`` or a round-tripping float."""
    if math.isinf(bound):
        return "+Inf"
    return format_value(bound)


def format_value(value: int | float) -> str:
    """Format a sample value so ``float(format_value(v)) == float(v)``."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def sample_key(
    name: str, labelnames: tuple[str, ...], labelvalues: tuple[str, ...], **extra: str
) -> str:
    """The canonical flattened series key: ``name{a="x",b="y"}``.

    Identical between the JSON flattener and the Prometheus exporter, which
    is what lets tests assert the two agree series-by-series.
    """
    pairs = list(zip(labelnames, labelvalues)) + sorted(extra.items())
    if not pairs:
        return name
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return f"{name}{{{body}}}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
