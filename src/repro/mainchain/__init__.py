"""Bitcoin-like UTXO mainchain substrate (Def. 3.1) with CCTP hooks."""

from repro.mainchain.block import Block, BlockHeader, transactions_merkle_root
from repro.mainchain.chain import Blockchain, MainchainState, PendingPayout
from repro.mainchain.mempool import Mempool
from repro.mainchain.node import MainchainNode
from repro.mainchain.params import TEST_PARAMS, MainchainParams
from repro.mainchain.pow import block_work, meets_target, mine_header
from repro.mainchain.transaction import (
    BtrTx,
    CertificateTx,
    CoinTransaction,
    CswTx,
    SidechainDeclarationTx,
    Transaction,
    TransactionBuilder,
    TxInput,
    make_coinbase,
)
from repro.mainchain.utxo import Coin, Outpoint, TxOutput, UTXOSet
from repro.mainchain.validation import (
    compute_sc_txs_commitment,
    validate_block_structure,
)

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "BtrTx",
    "CertificateTx",
    "Coin",
    "CoinTransaction",
    "CswTx",
    "MainchainNode",
    "MainchainParams",
    "MainchainState",
    "Mempool",
    "Outpoint",
    "PendingPayout",
    "SidechainDeclarationTx",
    "TEST_PARAMS",
    "Transaction",
    "TransactionBuilder",
    "TxInput",
    "TxOutput",
    "UTXOSet",
    "block_work",
    "compute_sc_txs_commitment",
    "make_coinbase",
    "meets_target",
    "mine_header",
    "transactions_merkle_root",
    "validate_block_structure",
]
