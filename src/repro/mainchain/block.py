"""Mainchain blocks and headers.

The header carries ``sc_txs_commitment`` (§4.1.3): the root of the Sidechain
Transactions Commitment tree over the block's sidechain-related actions,
which lets sidechain nodes verify their slice of the block without the body
(§5.5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.crypto.hashing import hash_bytes
from repro.crypto.merkle import MerkleTree
from repro.encoding import Encoder
from repro.mainchain.transaction import Transaction


@dataclass(frozen=True)
class BlockHeader:
    """The mainchain block header (paper §5.5.1's ``MCBlockHeader``)."""

    prev_hash: bytes
    height: int
    merkle_root: bytes
    sc_txs_commitment: bytes
    timestamp: int
    target_bits: int
    nonce: int = 0

    def encode(self) -> bytes:
        """Canonical byte encoding (the proof-of-work preimage)."""
        return (
            Encoder()
            .raw(self.prev_hash)
            .u64(self.height)
            .raw(self.merkle_root)
            .raw(self.sc_txs_commitment)
            .u64(self.timestamp)
            .u32(self.target_bits)
            .u64(self.nonce)
            .done()
        )

    @cached_property
    def hash(self) -> bytes:
        """The block id."""
        return hash_bytes(self.encode(), b"zendoo/mc-block")

    def with_nonce(self, nonce: int) -> "BlockHeader":
        """A copy with a different nonce (used by the miner)."""
        return BlockHeader(
            prev_hash=self.prev_hash,
            height=self.height,
            merkle_root=self.merkle_root,
            sc_txs_commitment=self.sc_txs_commitment,
            timestamp=self.timestamp,
            target_bits=self.target_bits,
            nonce=nonce,
        )


@dataclass(frozen=True)
class Block:
    """A full mainchain block: header plus ordered transactions."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    def encode(self) -> bytes:
        """Canonical wire encoding (header + length-prefixed transactions)."""
        enc = Encoder().var_bytes(self.header.encode())
        enc.sequence(self.transactions, lambda e, tx: e.var_bytes(tx.encode()))
        return enc.done()

    @property
    def hash(self) -> bytes:
        """The block id (the header hash)."""
        return self.header.hash

    @property
    def height(self) -> int:
        """The block height."""
        return self.header.height


def transactions_merkle_root(transactions: tuple[Transaction, ...]) -> bytes:
    """The header's transaction Merkle root."""
    return MerkleTree([tx.txid for tx in transactions]).root
