"""A mainchain full node: chain + mempool + block template miner.

This is the top-level mainchain API used by examples and by the Latus
sidechain nodes observing the mainchain.  Mining assembles a candidate
block from the mempool, *pre-connects* it against a state copy so an
invalid mempool transaction can be dropped rather than poisoning the block,
computes the sidechain-transactions commitment, and grinds the proof of
work.
"""

from __future__ import annotations

from repro import observability
from repro.errors import StorageError, ValidationError, ZendooError
from repro.lifecycle import NodeLifecycle, resolve_store_kwarg
from repro.mainchain.block import Block, BlockHeader, transactions_merkle_root
from repro.mainchain.chain import Blockchain, MainchainState
from repro.mainchain.mempool import Mempool
from repro.mainchain.params import MainchainParams
from repro.mainchain.pow import mine_header
from repro.mainchain.transaction import CertificateTx, Transaction, make_coinbase
from repro.mainchain.validation import compute_sc_txs_commitment

_TEMPLATE_DROPS = observability.registry().counter(
    "repro_mainchain_template_drops_total",
    "mempool transactions dropped during block-template pre-connection",
).labels()


class MainchainNode(NodeLifecycle):
    """A self-contained mainchain node.

    Shares the crash/restart/resync lifecycle with
    :class:`~repro.latus.node.LatusNode` (same method names, same
    ``repro_node_*`` counters).  ``store=`` / ``data_dir=`` attach a durable
    :class:`~repro.storage.StateStore` to the underlying
    :class:`Blockchain`, and ``restart(data_dir=...)`` recovers the chain
    from disk.
    """

    _SYNC_RETRYABLE = (ValidationError, ZendooError)
    _SYNC_ERROR = ValidationError

    def __init__(
        self,
        params: MainchainParams | None = None,
        verify_pool=None,
        store=None,
        data_dir=None,
        fsync: str = "block",
        snapshot_interval: int = 16,
        storage=None,
    ) -> None:
        self.params = params or MainchainParams()
        #: Optional :class:`repro.snark.pool.ProverPool` for batched
        #: certificate verification while connecting blocks.
        self.verify_pool = verify_pool
        self.snapshot_interval = snapshot_interval
        store = resolve_store_kwarg(store, storage, "MainchainNode")
        if data_dir is not None:
            if store is not None:
                raise StorageError("pass data_dir= or store=, not both")
            from repro.storage import FileStore

            store = FileStore(data_dir, fsync=fsync)
        self._init_lifecycle(store)
        try:
            self.chain = Blockchain(
                self.params,
                verify_pool=verify_pool,
                store=store,
                snapshot_interval=snapshot_interval,
            )
        except StorageError as exc:
            import warnings

            warnings.warn(
                f"disk recovery failed ({exc}); starting from genesis",
                RuntimeWarning,
                stacklevel=2,
            )
            if store is not None:
                store.reset()
            self.chain = Blockchain(
                self.params,
                verify_pool=verify_pool,
                store=store,
                snapshot_interval=snapshot_interval,
            )
        self.mempool = Mempool()
        self._clock = 0

    # -- lifecycle hooks ------------------------------------------------------------

    def _drop_inflight(self) -> None:
        self.mempool.clear()
        if self._store is not None and not self._store.read_only:
            self._store.discard_staged()

    def _reset_for_restart(self) -> None:
        self.chain = Blockchain(self.params, verify_pool=self.verify_pool)
        self.mempool = Mempool()
        self._clock = 0

    def _recover_from_store(self) -> bool:
        # the Blockchain constructor performs the actual snapshot + WAL
        # replay; StorageError propagates to NodeLifecycle.restart, which
        # falls back to the empty chain
        chain = Blockchain(
            self.params,
            verify_pool=self.verify_pool,
            store=self._store,
            snapshot_interval=self.snapshot_interval,
        )
        if chain.height == 0 and self._store.is_empty():
            return False
        self.chain = chain
        self._clock = max(self._clock, chain.tip.header.timestamp)
        return True

    def _adopt_peer_chain(self, peer: "MainchainNode") -> None:
        chain = Blockchain(self.params, verify_pool=self.verify_pool)
        for block in peer.chain.active_chain()[1:]:
            chain.add_block(block)
        self.chain = chain
        self._clock = max(self._clock, chain.tip.header.timestamp)
        if self._store is not None:
            # re-seed the store with the adopted chain
            self._store.reset()
            chain._store = self._store
            chain._write_snapshot()

    def _chain_length(self) -> int:
        return self.chain.height + 1

    def close(self) -> None:
        """Release the attached store, if any."""
        if self._store is not None:
            self._store.close()

    # -- convenience accessors ------------------------------------------------------

    @property
    def height(self) -> int:
        """Active-chain height."""
        return self.chain.height

    @property
    def state(self) -> MainchainState:
        """Validated state at the tip (read-only)."""
        return self.chain.state

    def submit_transaction(self, tx: Transaction) -> None:
        """Queue a transaction for mining."""
        self._require_running()
        self.mempool.submit(tx)

    # -- mining -----------------------------------------------------------------------

    def mine_block(self, miner_addr: bytes, timestamp: int | None = None) -> Block:
        """Assemble, mine and connect the next block; returns it.

        Mempool transactions that fail stateful validation are silently
        dropped from the template (and from the mempool).  ``timestamp``
        overrides the node's internal clock (used by retargeting tests to
        simulate fast/slow hash rates).
        """
        self._require_running()
        parent = self.chain.tip
        height = parent.height + 1
        selected, fees = self._select_transactions(height)
        coinbase = make_coinbase(
            miner_addr, self.params.block_reward + fees, height
        )
        transactions = (coinbase, *selected)
        self._clock = timestamp if timestamp is not None else self._clock + 1
        header = BlockHeader(
            prev_hash=parent.hash,
            height=height,
            merkle_root=transactions_merkle_root(transactions),
            sc_txs_commitment=compute_sc_txs_commitment(transactions),
            timestamp=self._clock,
            target_bits=self.chain.next_target_bits(parent.hash),
        )
        block = Block(header=mine_header(header), transactions=transactions)
        self.chain.add_block(block)
        self.mempool.remove_confirmed(transactions)
        return block

    def mine_blocks(self, miner_addr: bytes, count: int) -> list[Block]:
        """Mine ``count`` consecutive blocks."""
        return [self.mine_block(miner_addr) for _ in range(count)]

    def _select_transactions(self, height: int) -> tuple[list[Transaction], int]:
        """Greedy template building with pre-connection against a state copy."""
        candidates = self.mempool.take(self.params.max_block_transactions - 1)
        if not candidates:
            return [], 0
        trial = self.chain.state.copy()
        trial.cctp.advance_to_height(height)
        trial._mature_payouts(height)
        selected: list[Transaction] = []
        cert_ledgers: set[bytes] = set()
        fees = 0
        for tx in candidates:
            if isinstance(tx, CertificateTx):
                # The commitment tree admits one certificate per sidechain
                # per block; later same-sidechain certificates stay queued
                # for the next template rather than poisoning this one.
                if tx.wcert.ledger_id in cert_ledgers:
                    continue
            try:
                # _connect_transaction mutates `trial` only on success for the
                # failure modes we drop here (validation precedes mutation in
                # the coin path); a partially-applied CCTP failure only skews
                # the trial state, never the real chain.
                fees += trial._connect_transaction(
                    tx, _TemplateBlockView(height, self.chain.tip.hash)
                )
                selected.append(tx)
                if isinstance(tx, CertificateTx):
                    cert_ledgers.add(tx.wcert.ledger_id)
            except ZendooError:
                self.mempool.remove(tx.txid)
                _TEMPLATE_DROPS.inc()
        return selected, fees

    # -- receiving blocks from peers ---------------------------------------------------

    def receive_block(self, block: Block) -> bool:
        """Validate and store a block from the network; True when tip moved."""
        self._require_running()
        accepted = self.chain.add_block(block)
        if accepted:
            self.mempool.remove_confirmed(block.transactions)
        return accepted


class _TemplateBlockView:
    """Just enough of a Block for template pre-connection."""

    def __init__(self, height: int, block_hash: bytes) -> None:
        self.height = height
        self.hash = block_hash
