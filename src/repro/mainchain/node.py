"""A mainchain full node: chain + mempool + block template miner.

This is the top-level mainchain API used by examples and by the Latus
sidechain nodes observing the mainchain.  Mining assembles a candidate
block from the mempool, *pre-connects* it against a state copy so an
invalid mempool transaction can be dropped rather than poisoning the block,
computes the sidechain-transactions commitment, and grinds the proof of
work.
"""

from __future__ import annotations

from repro import observability
from repro.errors import ZendooError
from repro.mainchain.block import Block, BlockHeader, transactions_merkle_root
from repro.mainchain.chain import Blockchain, MainchainState
from repro.mainchain.mempool import Mempool
from repro.mainchain.params import MainchainParams
from repro.mainchain.pow import mine_header
from repro.mainchain.transaction import CertificateTx, Transaction, make_coinbase
from repro.mainchain.validation import compute_sc_txs_commitment

_TEMPLATE_DROPS = observability.registry().counter(
    "repro_mainchain_template_drops_total",
    "mempool transactions dropped during block-template pre-connection",
).labels()


class MainchainNode:
    """A self-contained mainchain node."""

    def __init__(
        self, params: MainchainParams | None = None, verify_pool=None
    ) -> None:
        self.params = params or MainchainParams()
        #: Optional :class:`repro.snark.pool.ProverPool` for batched
        #: certificate verification while connecting blocks.
        self.chain = Blockchain(self.params, verify_pool=verify_pool)
        self.mempool = Mempool()
        self._clock = 0

    # -- convenience accessors ------------------------------------------------------

    @property
    def height(self) -> int:
        """Active-chain height."""
        return self.chain.height

    @property
    def state(self) -> MainchainState:
        """Validated state at the tip (read-only)."""
        return self.chain.state

    def submit_transaction(self, tx: Transaction) -> None:
        """Queue a transaction for mining."""
        self.mempool.submit(tx)

    # -- mining -----------------------------------------------------------------------

    def mine_block(self, miner_addr: bytes, timestamp: int | None = None) -> Block:
        """Assemble, mine and connect the next block; returns it.

        Mempool transactions that fail stateful validation are silently
        dropped from the template (and from the mempool).  ``timestamp``
        overrides the node's internal clock (used by retargeting tests to
        simulate fast/slow hash rates).
        """
        parent = self.chain.tip
        height = parent.height + 1
        selected, fees = self._select_transactions(height)
        coinbase = make_coinbase(
            miner_addr, self.params.block_reward + fees, height
        )
        transactions = (coinbase, *selected)
        self._clock = timestamp if timestamp is not None else self._clock + 1
        header = BlockHeader(
            prev_hash=parent.hash,
            height=height,
            merkle_root=transactions_merkle_root(transactions),
            sc_txs_commitment=compute_sc_txs_commitment(transactions),
            timestamp=self._clock,
            target_bits=self.chain.next_target_bits(parent.hash),
        )
        block = Block(header=mine_header(header), transactions=transactions)
        self.chain.add_block(block)
        self.mempool.remove_confirmed(transactions)
        return block

    def mine_blocks(self, miner_addr: bytes, count: int) -> list[Block]:
        """Mine ``count`` consecutive blocks."""
        return [self.mine_block(miner_addr) for _ in range(count)]

    def _select_transactions(self, height: int) -> tuple[list[Transaction], int]:
        """Greedy template building with pre-connection against a state copy."""
        candidates = self.mempool.take(self.params.max_block_transactions - 1)
        if not candidates:
            return [], 0
        trial = self.chain.state.copy()
        trial.cctp.advance_to_height(height)
        trial._mature_payouts(height)
        selected: list[Transaction] = []
        cert_ledgers: set[bytes] = set()
        fees = 0
        for tx in candidates:
            if isinstance(tx, CertificateTx):
                # The commitment tree admits one certificate per sidechain
                # per block; later same-sidechain certificates stay queued
                # for the next template rather than poisoning this one.
                if tx.wcert.ledger_id in cert_ledgers:
                    continue
            try:
                # _connect_transaction mutates `trial` only on success for the
                # failure modes we drop here (validation precedes mutation in
                # the coin path); a partially-applied CCTP failure only skews
                # the trial state, never the real chain.
                fees += trial._connect_transaction(
                    tx, _TemplateBlockView(height, self.chain.tip.hash)
                )
                selected.append(tx)
                if isinstance(tx, CertificateTx):
                    cert_ledgers.add(tx.wcert.ledger_id)
            except ZendooError:
                self.mempool.remove(tx.txid)
                _TEMPLATE_DROPS.inc()
        return selected, fees

    # -- receiving blocks from peers ---------------------------------------------------

    def receive_block(self, block: Block) -> bool:
        """Validate and store a block from the network; True when tip moved."""
        accepted = self.chain.add_block(block)
        if accepted:
            self.mempool.remove_confirmed(block.transactions)
        return accepted


class _TemplateBlockView:
    """Just enough of a Block for template pre-connection."""

    def __init__(self, height: int, block_hash: bytes) -> None:
        self.height = height
        self.hash = block_hash
