"""Context-free block and transaction validation rules.

Everything here can be checked without chain state: structure, proof of
work, Merkle roots, and the sidechain-transactions commitment recomputation.
Stateful checks (UTXO existence, signatures against owners, CCTP rules)
live in :mod:`repro.mainchain.chain`.
"""

from __future__ import annotations

import hashlib

from repro.core.commitment import build_commitment
from repro.errors import ValidationError
from repro.mainchain.block import Block, transactions_merkle_root
from repro.mainchain.params import MainchainParams
from repro.mainchain.pow import meets_target
from repro.mainchain.transaction import (
    BtrTx,
    CertificateTx,
    CoinTransaction,
    CswTx,
    SidechainDeclarationTx,
    Transaction,
)


#: Memo for :func:`compute_sc_txs_commitment`, keyed by a digest of the
#: transaction tuple.  FIFO-bounded; sized for the mine-then-validate flow
#: (a node validating its own freshly-mined block hits the entry it just
#: wrote) plus reorg replays of recent blocks.
_COMMITMENT_CACHE: dict[bytes, bytes] = {}
_COMMITMENT_CACHE_MAX: int = 256


def _transactions_digest(transactions: tuple[Transaction, ...]) -> bytes:
    """Order-sensitive digest of the txids; txids commit to the FT/BTR/wcert
    payloads the commitment is built from."""
    h = hashlib.blake2b(digest_size=32, person=b"zendoo/sctxs-mm")
    for tx in transactions:
        h.update(tx.txid)
    return h.digest()


def compute_sc_txs_commitment(transactions: tuple[Transaction, ...]) -> bytes:
    """Recompute the header's ``SCTxsCommitment`` from the block body.

    Memoized on a digest of the transaction tuple, so the common
    mine-then-validate sequence builds the MiMC commitment tree once per
    block instead of twice.
    """
    key = _transactions_digest(transactions)
    cached = _COMMITMENT_CACHE.get(key)
    if cached is not None:
        return cached
    fts, btrs, wcerts = [], [], []
    for tx in transactions:
        if isinstance(tx, CoinTransaction):
            fts.extend(tx.forward_transfers)
        elif isinstance(tx, BtrTx):
            btrs.extend(tx.requests)
        elif isinstance(tx, CertificateTx):
            wcerts.append(tx.wcert)
    root = build_commitment(fts, btrs, wcerts).root
    if len(_COMMITMENT_CACHE) >= _COMMITMENT_CACHE_MAX:
        _COMMITMENT_CACHE.pop(next(iter(_COMMITMENT_CACHE)))
    _COMMITMENT_CACHE[key] = root
    return root


def validate_block_structure(block: Block, params: MainchainParams) -> None:
    """All context-free checks; raises :class:`ValidationError` on failure."""
    if not block.transactions:
        raise ValidationError("block has no transactions")
    if len(block.transactions) > params.max_block_transactions:
        raise ValidationError("block exceeds the transaction limit")

    first, *rest = block.transactions
    if not isinstance(first, CoinTransaction) or not first.is_coinbase:
        raise ValidationError("first transaction must be the coinbase")
    for tx in rest:
        if isinstance(tx, CoinTransaction) and tx.is_coinbase:
            raise ValidationError("only one coinbase per block")

    if params.retarget_interval == 0 and block.header.target_bits != params.pow_zero_bits:
        raise ValidationError("wrong difficulty target")
    # with retargeting enabled, the correct per-height target is contextual
    # and checked by the chain (Blockchain.add_block); the PoW itself is
    # always checked against the declared target here
    if not meets_target(block.hash, block.header.target_bits):
        raise ValidationError("proof of work does not meet the target")

    if block.header.merkle_root != transactions_merkle_root(block.transactions):
        raise ValidationError("transaction merkle root mismatch")
    if block.header.sc_txs_commitment != compute_sc_txs_commitment(block.transactions):
        raise ValidationError("sidechain transactions commitment mismatch")

    for tx in block.transactions:
        validate_transaction_structure(tx)


def validate_transaction_structure(tx: Transaction) -> None:
    """Context-free per-transaction checks."""
    if isinstance(tx, CoinTransaction):
        if tx.is_coinbase and tx.inputs:
            raise ValidationError("coinbase must not have inputs")
        if not tx.is_coinbase and not tx.inputs:
            raise ValidationError("non-coinbase transaction must have inputs")
        for output in tx.outputs:
            if output.amount <= 0:
                raise ValidationError("outputs must carry positive amounts")
        for ft in tx.forward_transfers:
            if ft.amount <= 0:
                raise ValidationError("forward transfers must carry positive amounts")
        seen = set()
        for inp in tx.inputs:
            key = (inp.outpoint.txid, inp.outpoint.index)
            if key in seen:
                raise ValidationError("transaction spends the same outpoint twice")
            seen.add(key)
    elif isinstance(tx, BtrTx):
        if not tx.requests:
            raise ValidationError("BTR transaction carries no requests")
    elif isinstance(tx, (CertificateTx, CswTx, SidechainDeclarationTx)):
        pass
    else:
        raise ValidationError(f"unknown transaction type {type(tx).__name__}")
