"""The mainchain UTXO set.

Standard Bitcoin-style bookkeeping: outputs are identified by
``(txid, index)`` outpoints; coins carry their creation height and an
optional maturity height (coinbase outputs and certificate payouts are
locked until mature).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cow import CowDict
from repro.encoding import Encoder
from repro.errors import DoubleSpend


@dataclass(frozen=True)
class Outpoint:
    """Reference to the ``index``-th output of transaction ``txid``."""

    txid: bytes
    index: int

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return Encoder().raw(self.txid).u32(self.index).done()


@dataclass(frozen=True)
class TxOutput:
    """A spendable output: ``amount`` coins locked to ``addr``."""

    addr: bytes
    amount: int

    def encode(self) -> bytes:
        """Canonical byte encoding."""
        return Encoder().var_bytes(self.addr).u64(self.amount).done()


@dataclass(frozen=True)
class Coin:
    """A UTXO entry: the output plus its provenance metadata."""

    output: TxOutput
    created_height: int
    maturity_height: int = 0

    def spendable_at(self, height: int) -> bool:
        """True when the coin may be spent in a block at ``height``."""
        return height >= self.maturity_height


class UTXOSet:
    """A mutable map from outpoints to coins.

    Backed by a layered copy-on-write dict so the per-block state snapshot
    costs O(coins touched since the last snapshot), not O(UTXO set).
    """

    def __init__(self) -> None:
        self._coins: CowDict = CowDict()

    def __len__(self) -> int:
        return len(self._coins)

    def __contains__(self, outpoint: Outpoint) -> bool:
        return outpoint in self._coins

    def get(self, outpoint: Outpoint) -> Coin | None:
        """The coin at ``outpoint``, or None when absent/spent."""
        return self._coins.get(outpoint)

    def add(self, outpoint: Outpoint, coin: Coin) -> None:
        """Create a coin; re-creating an existing outpoint is a logic error."""
        if outpoint in self._coins:
            raise DoubleSpend(f"outpoint {outpoint.txid.hex()[:16]}:{outpoint.index} already exists")
        self._coins[outpoint] = coin

    def spend(self, outpoint: Outpoint) -> Coin:
        """Remove and return the coin at ``outpoint``; raises when missing."""
        try:
            return self._coins.pop(outpoint)
        except KeyError:
            raise DoubleSpend(
                f"outpoint {outpoint.txid.hex()[:16]}:{outpoint.index} is unknown or spent"
            )

    def remove_if_present(self, outpoint: Outpoint) -> None:
        """Remove a coin when present (used to cancel superseded payouts)."""
        self._coins.pop(outpoint, None)

    def balance_of(self, addr: bytes) -> int:
        """Total coins locked to ``addr``."""
        return sum(c.output.amount for c in self._coins.values() if c.output.addr == addr)

    def coins_of(self, addr: bytes) -> list[tuple[Outpoint, Coin]]:
        """All coins locked to ``addr`` (outpoint order unspecified)."""
        return [
            (op, coin)
            for op, coin in self._coins.items()
            if coin.output.addr == addr
        ]

    def total_supply(self) -> int:
        """Sum of all unspent amounts."""
        return sum(c.output.amount for c in self._coins.values())

    def items(self):
        """Iterate over ``(outpoint, coin)`` pairs."""
        return self._coins.items()

    def copy(self) -> "UTXOSet":
        """Copy-on-write snapshot (coins are immutable values)."""
        clone = UTXOSet()
        clone._coins = self._coins.copy()
        return clone
