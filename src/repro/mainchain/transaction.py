"""Mainchain transaction types.

The paper assumes a UTXO mainchain (§4.1.1) where:

* regular multi-input/multi-output transactions may carry **forward
  transfer** outputs (unspendable, coin-destroying);
* sidechain declarations (§4.2), withdrawal certificates (Def. 4.4),
  backward transfer requests (Def. 4.5) and ceased sidechain withdrawals
  (Def. 4.6) are special transactions.

Transaction ids are blake2b digests over the canonical encoding *without*
signatures; inputs sign that digest so ids are signature-independent.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from functools import cached_property

from repro.core.bootstrap import SidechainConfig
from repro.core.transfers import (
    BackwardTransferRequest,
    CeasedSidechainWithdrawal,
    ForwardTransfer,
    WithdrawalCertificate,
)
from repro.crypto.hashing import hash_bytes
from repro.crypto.keys import KeyPair, address_of
from repro.crypto.signatures import PublicKey, Signature
from repro.encoding import Encoder
from repro.errors import ValidationError
from repro.mainchain.utxo import Outpoint, TxOutput


@dataclass(frozen=True)
class TxInput:
    """A spend of a previous output, authorized by a Schnorr signature.

    The signature covers the host transaction's signing digest; ``pubkey``
    must hash to the spent output's address.
    """

    outpoint: Outpoint
    pubkey: PublicKey
    signature: Signature

    def encode_unsigned(self) -> bytes:
        """Encoding without the signature (feeds the txid/signing digest)."""
        return Encoder().raw(self.outpoint.encode()).var_bytes(self.pubkey.to_bytes()).done()

    def encode(self) -> bytes:
        """Full encoding including the signature."""
        return (
            Encoder()
            .raw(self.outpoint.encode())
            .var_bytes(self.pubkey.to_bytes())
            .var_bytes(self.signature.to_bytes())
            .done()
        )


class BaseTransaction(abc.ABC):
    """Common surface of all mainchain transactions."""

    #: Discriminator byte mixed into every encoding.
    kind: int = 0

    @abc.abstractmethod
    def encode_unsigned(self) -> bytes:
        """Canonical encoding without witness data (defines the txid)."""

    @abc.abstractmethod
    def encode(self) -> bytes:
        """Full canonical encoding."""

    @cached_property
    def txid(self) -> bytes:
        """The transaction id."""
        return hash_bytes(self.encode_unsigned(), b"zendoo/mc-txid")

    @property
    def signing_digest(self) -> bytes:
        """The message every input signature must cover."""
        return hash_bytes(self.encode_unsigned(), b"zendoo/mc-sighash")


@dataclass(frozen=True)
class CoinTransaction(BaseTransaction):
    """A regular multi-input multi-output transaction (§4.1.1's example).

    ``forward_transfers`` are the unspendable coin-destroying outputs; a
    coinbase transaction has no inputs and is flagged explicitly.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    forward_transfers: tuple[ForwardTransfer, ...] = ()
    is_coinbase: bool = False
    #: Disambiguates coinbase txids across blocks.
    coinbase_tag: bytes = b""

    kind = 1

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind).boolean(self.is_coinbase).var_bytes(self.coinbase_tag)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode_unsigned()))
        enc.sequence(self.outputs, lambda e, o: e.var_bytes(o.encode()))
        enc.sequence(self.forward_transfers, lambda e, ft: e.var_bytes(ft.encode()))
        return enc.done()

    def encode(self) -> bytes:
        enc = Encoder().u8(self.kind).boolean(self.is_coinbase).var_bytes(self.coinbase_tag)
        enc.sequence(self.inputs, lambda e, i: e.var_bytes(i.encode()))
        enc.sequence(self.outputs, lambda e, o: e.var_bytes(o.encode()))
        enc.sequence(self.forward_transfers, lambda e, ft: e.var_bytes(ft.encode()))
        return enc.done()

    @property
    def output_total(self) -> int:
        """Sum of spendable outputs plus destroyed forward-transfer coins."""
        return sum(o.amount for o in self.outputs) + sum(
            ft.amount for ft in self.forward_transfers
        )


@dataclass(frozen=True)
class SidechainDeclarationTx(BaseTransaction):
    """The special transaction that creates a sidechain (§4.2)."""

    config: SidechainConfig

    kind = 2

    def encode_unsigned(self) -> bytes:
        return Encoder().u8(self.kind).var_bytes(self.config.encode()).done()

    def encode(self) -> bytes:
        return self.encode_unsigned()


@dataclass(frozen=True)
class CertificateTx(BaseTransaction):
    """Carrier of a withdrawal certificate (Def. 4.4).

    Backward-transfer payouts are not ordinary outputs: the chain creates
    them as protocol-level coins that mature at the end of the submission
    window (so a higher-quality certificate can still supersede them).
    """

    wcert: WithdrawalCertificate

    kind = 3

    def encode_unsigned(self) -> bytes:
        return Encoder().u8(self.kind).var_bytes(self.wcert.encode()).done()

    def encode(self) -> bytes:
        return self.encode_unsigned()


@dataclass(frozen=True)
class BtrTx(BaseTransaction):
    """Carrier of backward transfer requests (Def. 4.5)."""

    requests: tuple[BackwardTransferRequest, ...]

    kind = 4

    def encode_unsigned(self) -> bytes:
        enc = Encoder().u8(self.kind)
        enc.sequence(self.requests, lambda e, r: e.var_bytes(r.encode()))
        return enc.done()

    def encode(self) -> bytes:
        return self.encode_unsigned()


@dataclass(frozen=True)
class CswTx(BaseTransaction):
    """Carrier of a ceased sidechain withdrawal (Def. 4.6).

    On acceptance the chain pays ``csw.amount`` to ``csw.receiver`` directly
    (outpoint ``(txid, 0)``).
    """

    csw: CeasedSidechainWithdrawal

    kind = 5

    def encode_unsigned(self) -> bytes:
        return Encoder().u8(self.kind).var_bytes(self.csw.encode()).done()

    def encode(self) -> bytes:
        return self.encode_unsigned()


Transaction = (
    CoinTransaction | SidechainDeclarationTx | CertificateTx | BtrTx | CswTx
)


@dataclass
class _PlannedInput:
    outpoint: Outpoint
    keypair: KeyPair
    amount: int


class TransactionBuilder:
    """Convenience builder for signed :class:`CoinTransaction` objects.

    Usage::

        tx = (TransactionBuilder()
              .spend(outpoint, keypair, amount)
              .pay(receiver_addr, 30)
              .forward_transfer(ledger_id, metadata, 20)
              .build())
    """

    def __init__(self) -> None:
        self._inputs: list[_PlannedInput] = []
        self._outputs: list[TxOutput] = []
        self._fts: list[ForwardTransfer] = []

    def spend(self, outpoint: Outpoint, keypair: KeyPair, amount: int) -> "TransactionBuilder":
        """Add an input spending ``outpoint`` owned by ``keypair``."""
        self._inputs.append(_PlannedInput(outpoint, keypair, amount))
        return self

    def pay(self, addr: bytes, amount: int) -> "TransactionBuilder":
        """Add a regular output."""
        self._outputs.append(TxOutput(addr=addr, amount=amount))
        return self

    def forward_transfer(
        self, ledger_id: bytes, receiver_metadata: bytes, amount: int
    ) -> "TransactionBuilder":
        """Add a forward-transfer output (destroys coins on the MC)."""
        self._fts.append(
            ForwardTransfer(
                ledger_id=ledger_id, receiver_metadata=receiver_metadata, amount=amount
            )
        )
        return self

    def change_to(self, addr: bytes) -> "TransactionBuilder":
        """Add a change output returning the input surplus to ``addr``."""
        total_in = sum(p.amount for p in self._inputs)
        total_out = sum(o.amount for o in self._outputs) + sum(f.amount for f in self._fts)
        if total_in < total_out:
            raise ValidationError("inputs do not cover outputs; cannot compute change")
        if total_in > total_out:
            self._outputs.append(TxOutput(addr=addr, amount=total_in - total_out))
        return self

    def build(self) -> CoinTransaction:
        """Sign all inputs and return the finished transaction."""
        # Two-pass signing: txid covers inputs' outpoints and pubkeys only,
        # so the digest can be computed before signatures exist.
        placeholder = Signature(e=1, s=1)
        draft_inputs = tuple(
            TxInput(outpoint=p.outpoint, pubkey=p.keypair.public, signature=placeholder)
            for p in self._inputs
        )
        draft = CoinTransaction(
            inputs=draft_inputs,
            outputs=tuple(self._outputs),
            forward_transfers=tuple(self._fts),
        )
        digest = draft.signing_digest
        signed_inputs = tuple(
            TxInput(
                outpoint=p.outpoint,
                pubkey=p.keypair.public,
                signature=p.keypair.sign(digest),
            )
            for p in self._inputs
        )
        return CoinTransaction(
            inputs=signed_inputs,
            outputs=tuple(self._outputs),
            forward_transfers=tuple(self._fts),
        )


def make_coinbase(
    miner_addr: bytes, reward: int, height: int, extra_tag: bytes = b""
) -> CoinTransaction:
    """Build the coinbase transaction for a block at ``height``."""
    tag = Encoder().u64(height).var_bytes(extra_tag).done()
    return CoinTransaction(
        inputs=(),
        outputs=(TxOutput(addr=miner_addr, amount=reward),),
        is_coinbase=True,
        coinbase_tag=tag,
    )


def verify_input_signatures(tx: CoinTransaction) -> bool:
    """Check every input's signature over the transaction digest."""
    digest = tx.signing_digest
    return all(
        inp.pubkey.verify(digest, inp.signature) for inp in tx.inputs
    )


def input_owner_matches(inp: TxInput, owner_addr: bytes) -> bool:
    """Check that an input's pubkey hashes to the spent output's address."""
    return address_of(inp.pubkey) == owner_addr
