"""Mainchain consensus parameters.

The mainchain is "a blockchain system based on the Bitcoin backbone protocol
model" (Def. 3.1).  Parameters are collected here so tests and benches can
run with fast toy proof-of-work while examples can turn the difficulty up.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MainchainParams:
    """Consensus constants of a mainchain instance."""

    #: Proof-of-work difficulty: required leading zero bits of the block hash.
    pow_zero_bits: int = 8

    #: Coinbase subsidy per block (no halving in the reproduction).
    block_reward: int = 50_0000_0000

    #: Number of blocks before a coinbase output becomes spendable.
    coinbase_maturity: int = 2

    #: Maximum transactions per block (coinbase included).
    max_block_transactions: int = 1000

    #: Difficulty retargeting: every ``retarget_interval`` blocks the target
    #: adjusts by at most one bit based on observed timestamps (0 disables
    #: retargeting — the default for tests, where mining speed is synthetic).
    retarget_interval: int = 0

    #: Intended timestamp spacing between blocks (timestamp units).
    target_block_spacing: int = 10

    #: Network magic mixed into the genesis block hash so independent chains
    #: never share ids.
    network_tag: bytes = b"zendoo-mainnet-sim"


#: Defaults tuned for unit tests: near-instant mining.
TEST_PARAMS = MainchainParams(pow_zero_bits=4, coinbase_maturity=1)
