"""Chain state, block connection, fork choice and reorgs.

:class:`MainchainState` is the stateful view at one block: the UTXO set,
the CCTP state, pending certificate payouts and the active-chain hash list.
:class:`Blockchain` stores all blocks, keeps a validated state snapshot per
block, and performs cumulative-work fork choice — a heavier fork replaces
the active chain, which is exactly the reorg behaviour the Latus binding
(§5.1) must react to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.cctp import CctpState
from repro.core.cow import CowDict
from repro.core.transfers import WithdrawalCertificate
from repro.crypto.hashing import NULL_DIGEST, hash_bytes
from repro.errors import (
    DoubleSpend,
    InsufficientFunds,
    OrphanBlock,
    StorageError,
    UnknownBlock,
    ValidationError,
)
from repro.lifecycle import resolve_store_kwarg
from repro.mainchain.block import Block, BlockHeader
from repro.mainchain.params import MainchainParams
from repro.mainchain.pow import block_work
from repro.mainchain.transaction import (
    BtrTx,
    CertificateTx,
    CoinTransaction,
    CswTx,
    SidechainDeclarationTx,
    Transaction,
    input_owner_matches,
    verify_input_signatures,
)
from repro.mainchain.utxo import Coin, Outpoint, TxOutput, UTXOSet
from repro.mainchain.validation import validate_block_structure
from repro.snark import proving
from repro import observability

_REGISTRY = observability.registry()
_BLOCKS_CONNECTED = _REGISTRY.counter(
    "repro_mainchain_blocks_connected_total",
    "blocks connected to a validated mainchain state",
).labels()
_TXS_CONNECTED = _REGISTRY.counter(
    "repro_mainchain_txs_connected_total",
    "non-coinbase transactions connected inside blocks, by type",
    labelnames=("type",),
)


def _tx_type_label(tx) -> str:
    if isinstance(tx, CoinTransaction):
        return "coin"
    if isinstance(tx, SidechainDeclarationTx):
        return "sc_declaration"
    if isinstance(tx, CertificateTx):
        return "certificate"
    if isinstance(tx, BtrTx):
        return "btr"
    if isinstance(tx, CswTx):
        return "csw"
    return "other"


@dataclass(frozen=True)
class PendingPayout:
    """A certificate payout waiting for the end of the submission window."""

    outpoint: Outpoint
    output: TxOutput
    maturity_height: int
    ledger_id: bytes


#: Fold a :class:`BlockHashChain` overlay tail back into the shared prefix
#: once it reaches this many hashes (keeps snapshot cost bounded).
_HASH_TAIL_FOLD = 64


class BlockHashChain:
    """Active-chain block hashes with cheap snapshots via structural sharing.

    Linear history is the common case: every connected block appends exactly
    one hash, so all states along one branch share a single backing list and
    each snapshot just remembers its own length.  When an append would land
    on a slot a discarded sibling (e.g. a mined-and-abandoned template trial)
    already claimed, the hash goes to a small private overlay tail instead of
    cloning the whole prefix; the tail is folded back into a fresh shared
    list once it reaches :data:`_HASH_TAIL_FOLD` entries.  Snapshots
    therefore cost O(tail) ≤ 64 hashes instead of O(chain height).
    """

    __slots__ = ("_shared", "_shared_len", "_tail")

    def __init__(self, hashes: "list[bytes] | tuple[bytes, ...]" = ()) -> None:
        self._shared: list[bytes] = list(hashes)
        self._shared_len = len(self._shared)
        self._tail: list[bytes] = []

    def __len__(self) -> int:
        return self._shared_len + len(self._tail)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int) -> bytes:
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError("block hash index out of range")
        if index < self._shared_len:
            return self._shared[index]
        return self._tail[index - self._shared_len]

    def __iter__(self) -> Iterator[bytes]:
        for i in range(self._shared_len):
            yield self._shared[i]
        yield from self._tail

    def append(self, block_hash: bytes) -> None:
        if not self._tail:
            if len(self._shared) == self._shared_len:
                # free slot: extend the shared list in place
                self._shared.append(block_hash)
                self._shared_len += 1
                return
            if self._shared[self._shared_len] == block_hash:
                # identical replay of a hash a sibling already wrote
                self._shared_len += 1
                return
        self._tail.append(block_hash)

    def copy(self) -> "BlockHashChain":
        """Snapshot; O(tail), with an amortized fold keeping tails short."""
        if len(self._tail) >= _HASH_TAIL_FOLD:
            self._shared = self._shared[: self._shared_len] + self._tail
            self._shared_len = len(self._shared)
            self._tail = []
        clone = BlockHashChain()
        clone._shared = self._shared
        clone._shared_len = self._shared_len
        clone._tail = list(self._tail)
        return clone


class MainchainState:
    """The full validated state after connecting some chain of blocks."""

    def __init__(self, params: MainchainParams) -> None:
        self.params = params
        self.utxos = UTXOSet()
        self.cctp = CctpState()
        self.height = -1
        self.block_hashes = BlockHashChain()
        # cert id -> payouts not yet matured into the UTXO set
        self.pending_payouts: CowDict = CowDict()
        # maturity height -> cert ids whose payouts mature there; slots may
        # be stale after supersession (skipped when the cert id is gone)
        self._payout_maturities: CowDict = CowDict()

    def copy(self) -> "MainchainState":
        """Copy-on-write snapshot used to validate fork branches.

        Cost is proportional to the state *touched since the last snapshot*
        (dirty UTXO entries, dirty sidechain entries, the block-hash overlay
        tail), not to the total number of registered sidechains, coins or
        nullifiers.
        """
        clone = MainchainState(self.params)
        clone.utxos = self.utxos.copy()
        clone.cctp = self.cctp.copy()
        clone.height = self.height
        clone.block_hashes = self.block_hashes.copy()
        clone.pending_payouts = self.pending_payouts.copy()
        clone._payout_maturities = self._payout_maturities.copy()
        return clone

    def block_hash_at(self, height: int) -> bytes:
        """Active-chain block hash at ``height``."""
        if not 0 <= height <= self.height:
            raise UnknownBlock(f"no active block at height {height}")
        return self.block_hashes[height]

    # -- block connection ---------------------------------------------------------

    def connect_block(self, block: Block, verify_pool=None) -> None:
        """Validate ``block`` statefully and apply it; raises on any rule break.

        The caller guarantees context-free validity and correct parent
        linkage; on exception the state must be discarded (connection is not
        atomic).  When ``verify_pool`` (a :class:`repro.snark.pool.ProverPool`)
        is given, the block's certificate SNARK proofs are verified as one
        chunked batch through the pool before transactions are applied;
        otherwise they are batch-verified serially.  Either way the verdicts
        feed the exact per-certificate rule position, so acceptance and
        rejection are indistinguishable from inline verification.
        """
        if block.height != self.height + 1:
            raise ValidationError(
                f"block height {block.height} does not extend state height {self.height}"
            )
        if self.block_hashes and block.header.prev_hash != self.block_hashes[-1]:
            raise ValidationError("block does not extend the state tip")

        height = block.height
        # Ceasing deadlines fire before any transaction of this block — a
        # certificate arriving at the deadline height is already late.
        self.cctp.advance_to_height(height)
        self._mature_payouts(height)
        verdicts = self._batched_cert_verdicts(block, verify_pool)

        fees = 0
        coinbase = block.transactions[0]
        for index, tx in enumerate(block.transactions[1:], start=1):
            fees += self._connect_transaction(tx, block, verdicts.get(index))
            _TXS_CONNECTED.labels(type=_tx_type_label(tx)).inc()
        self._connect_coinbase(coinbase, fees, height)

        self.height = height
        self.block_hashes.append(block.hash)
        _BLOCKS_CONNECTED.inc()

    def _batched_cert_verdicts(self, block: Block, verify_pool) -> dict[int, bool]:
        """Pre-verify the block's certificate proofs as one batch.

        Returns ``{transaction index: proof verdict}`` for every certificate
        whose public input is already determined (known, active sidechain,
        in-window epoch).  Certificates outside that set are left to the
        inline path, where they fail with the precise rule error.  Ceasing
        deadlines must have fired for this height before the call.
        """
        jobs: list[tuple[int, tuple]] = []
        for index, tx in enumerate(block.transactions):
            if isinstance(tx, CertificateTx):
                job = self.cctp.certificate_verification_job(
                    tx.wcert, block.height, self.block_hash_at
                )
                if job is not None:
                    vk, public_input = job
                    jobs.append((index, (vk, public_input, tx.wcert.proof)))
        if not jobs:
            return {}
        triples = [triple for _, triple in jobs]
        if verify_pool is not None:
            results = verify_pool.map_verify(triples)
        else:
            results = proving.verify_many(triples)
        return {index: ok for (index, _), ok in zip(jobs, results)}

    def _mature_payouts(self, height: int) -> None:
        """Credit payouts maturing exactly at ``height``.

        Maturities are indexed by height when the certificate is adopted
        (always in the future at that point), and connected heights are
        consecutive, so one slot lookup replaces the scan over all pending
        certificates.  Slots of superseded certificates are stale and
        skipped.
        """
        for cert_id in self._payout_maturities.pop(height, ()):
            payouts = self.pending_payouts.get(cert_id)
            if payouts is None:
                continue  # superseded before maturity
            for payout in payouts:
                self.utxos.add(
                    payout.outpoint,
                    Coin(
                        output=payout.output,
                        created_height=height,
                        maturity_height=payout.maturity_height,
                    ),
                )
            del self.pending_payouts[cert_id]

    def _connect_coinbase(self, tx: CoinTransaction, fees: int, height: int) -> None:
        allowed = self.params.block_reward + fees
        minted = sum(o.amount for o in tx.outputs)
        if minted > allowed:
            raise ValidationError(
                f"coinbase mints {minted} but only {allowed} is allowed"
            )
        if tx.forward_transfers:
            raise ValidationError("coinbase cannot carry forward transfers")
        self._create_outputs(tx, height, maturity=height + self.params.coinbase_maturity)

    def _connect_transaction(
        self, tx: Transaction, block: Block, proof_valid: bool | None = None
    ) -> int:
        """Apply one non-coinbase transaction; returns the fee it pays."""
        height = block.height
        if isinstance(tx, CoinTransaction):
            return self._connect_coin_tx(tx, height)
        if isinstance(tx, SidechainDeclarationTx):
            self.cctp.register_sidechain(tx.config, height)
            return 0
        if isinstance(tx, CertificateTx):
            self._connect_certificate(tx.wcert, height, block.hash, proof_valid)
            return 0
        if isinstance(tx, BtrTx):
            for request in tx.requests:
                self.cctp.process_btr(request, height)
            return 0
        if isinstance(tx, CswTx):
            receiver, amount = self.cctp.process_csw(tx.csw, height)
            self.utxos.add(
                Outpoint(txid=tx.txid, index=0),
                Coin(
                    output=TxOutput(addr=receiver, amount=amount),
                    created_height=height,
                ),
            )
            return 0
        raise ValidationError(f"unknown transaction type {type(tx).__name__}")

    def _connect_coin_tx(self, tx: CoinTransaction, height: int) -> int:
        if not verify_input_signatures(tx):
            raise ValidationError("bad input signature")
        total_in = 0
        spent_coins = []
        for inp in tx.inputs:
            coin = self.utxos.get(inp.outpoint)
            if coin is None:
                raise DoubleSpend("input is unknown or already spent")
            if not coin.spendable_at(height):
                raise ValidationError("input is not yet mature")
            if not input_owner_matches(inp, coin.output.addr):
                raise ValidationError("input pubkey does not own the spent output")
            total_in += coin.output.amount
            spent_coins.append(inp.outpoint)
        if total_in < tx.output_total:
            raise InsufficientFunds(
                f"inputs {total_in} < outputs {tx.output_total}"
            )
        # Forward transfers are validated by the CCTP (active target, amount).
        for ft in tx.forward_transfers:
            self.cctp.process_forward_transfer(ft, height)
        for outpoint in spent_coins:
            self.utxos.spend(outpoint)
        self._create_outputs(tx, height, maturity=0)
        return total_in - tx.output_total

    def _create_outputs(self, tx: CoinTransaction, height: int, maturity: int) -> None:
        for index, output in enumerate(tx.outputs):
            self.utxos.add(
                Outpoint(txid=tx.txid, index=index),
                Coin(output=output, created_height=height, maturity_height=maturity),
            )

    def _connect_certificate(
        self,
        wcert: WithdrawalCertificate,
        height: int,
        block_hash: bytes,
        proof_valid: bool | None = None,
    ) -> None:
        superseded = self.cctp.process_certificate(
            wcert, height, block_hash, self.block_hash_at, proof_valid
        )
        if superseded is not None:
            self.pending_payouts.pop(superseded.id, None)
        schedule = self.cctp.entry(wcert.ledger_id).config.schedule
        maturity = schedule.ceasing_height(wcert.epoch_id)
        if not wcert.bt_list:
            return
        self.pending_payouts[wcert.id] = tuple(
            PendingPayout(
                outpoint=Outpoint(txid=wcert.id, index=index),
                output=TxOutput(addr=bt.receiver_addr, amount=bt.amount),
                maturity_height=maturity,
                ledger_id=wcert.ledger_id,
            )
            for index, bt in enumerate(wcert.bt_list)
        )
        slot = self._payout_maturities.get(maturity, ())
        if wcert.id not in slot:
            self._payout_maturities[maturity] = (*slot, wcert.id)


@dataclass
class _BlockRecord:
    block: Block
    cumulative_work: int
    state: MainchainState


class Blockchain:
    """Block store with per-block validated states and work-based fork choice.

    Attach a :class:`~repro.storage.StateStore` (``store=`` or the
    deprecated ``storage=`` alias) to make the chain durable: every
    accepted block is appended to the WAL and a full snapshot (active
    chain + tip state) is written whenever the tip advances onto a
    ``snapshot_interval`` boundary.  Constructing a :class:`Blockchain`
    over a non-empty store recovers the chain from disk: snapshot blocks
    are restored without re-validation (historical states are pruned —
    only the tip keeps one) and the WAL tail is replayed through the full
    :meth:`add_block` validation.
    """

    def __init__(
        self,
        params: MainchainParams | None = None,
        verify_pool=None,
        store=None,
        snapshot_interval: int = 16,
        storage=None,
    ) -> None:
        self.params = params or MainchainParams()
        #: Optional :class:`repro.snark.pool.ProverPool` used to batch-verify
        #: certificate proofs while connecting blocks.
        self.verify_pool = verify_pool
        self._store = resolve_store_kwarg(store, storage, "Blockchain")
        self.snapshot_interval = snapshot_interval
        self._recovering = False
        genesis = _make_genesis(self.params)
        genesis_state = MainchainState(self.params)
        genesis_state.height = 0
        genesis_state.block_hashes = BlockHashChain([genesis.hash])
        self._records: dict[bytes, _BlockRecord] = {
            genesis.hash: _BlockRecord(
                block=genesis, cumulative_work=0, state=genesis_state
            )
        }
        self.genesis = genesis
        self._active_tip = genesis.hash
        if self._store is not None and not self._store.is_empty():
            self._recover_from_store()

    @property
    def store(self):
        """The attached :class:`~repro.storage.StateStore` (or None)."""
        return self._store

    # -- queries ------------------------------------------------------------------

    @property
    def tip(self) -> Block:
        """The active-chain tip block."""
        return self._records[self._active_tip].block

    @property
    def height(self) -> int:
        """The active-chain height."""
        return self.tip.height

    @property
    def state(self) -> MainchainState:
        """The validated state at the active tip (do not mutate)."""
        return self._records[self._active_tip].state

    def block(self, block_hash: bytes) -> Block:
        """Look up a block by hash."""
        try:
            return self._records[block_hash].block
        except KeyError:
            raise UnknownBlock(f"unknown block {block_hash.hex()[:16]}")

    def has_block(self, block_hash: bytes) -> bool:
        """True when the block is stored (on any branch)."""
        return block_hash in self._records

    def block_at_height(self, height: int) -> Block:
        """The active-chain block at ``height``."""
        return self.block(self.state.block_hash_at(height))

    def active_chain(self) -> list[Block]:
        """All active-chain blocks, genesis first."""
        return [self.block(h) for h in self.state.block_hashes]

    def cumulative_work(self, block_hash: bytes) -> int:
        """Total work of the chain ending at ``block_hash``."""
        return self._records[block_hash].cumulative_work

    def next_target_bits(self, parent_hash: bytes) -> int:
        """The required difficulty for a block extending ``parent_hash``.

        With retargeting disabled this is the fixed ``pow_zero_bits``.  With
        retargeting, every ``retarget_interval`` blocks the target moves by
        at most one bit: harder when the last interval's timestamps span
        less than half the intended time, easier (down to 1 bit) when they
        span more than double.
        """
        interval = self.params.retarget_interval
        parent = self._records.get(parent_hash)
        if parent is None:
            raise UnknownBlock(f"unknown parent {parent_hash.hex()[:16]}")
        if interval == 0:
            return self.params.pow_zero_bits
        parent_bits = (
            parent.block.header.target_bits
            if parent.block.height > 0
            else self.params.pow_zero_bits
        )
        next_height = parent.block.height + 1
        if next_height % interval != 0 or next_height < interval:
            return parent_bits
        # walk back `interval` blocks along this branch
        cursor = parent
        for _ in range(interval - 1):
            cursor = self._records[cursor.block.header.prev_hash]
        span = parent.block.header.timestamp - cursor.block.header.timestamp
        expected = self.params.target_block_spacing * (interval - 1)
        if span * 2 < expected:
            return parent_bits + 1
        if span > expected * 2:
            return max(1, parent_bits - 1)
        return parent_bits

    # -- extension ---------------------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Validate and store ``block``; returns True when it becomes the tip.

        Raises :class:`OrphanBlock` when the parent is unknown and
        :class:`ValidationError` (or a CCTP error) when invalid.  Fork choice
        is by cumulative work with first-seen tie breaking.
        """
        if block.hash in self._records:
            return block.hash == self._active_tip
        parent = self._records.get(block.header.prev_hash)
        if parent is None:
            raise OrphanBlock(
                f"parent {block.header.prev_hash.hex()[:16]} is unknown"
            )
        if block.height != parent.block.height + 1:
            raise ValidationError("block height does not follow its parent")
        required_bits = self.next_target_bits(block.header.prev_hash)
        if block.header.target_bits != required_bits:
            raise ValidationError(
                f"wrong difficulty: block declares {block.header.target_bits} "
                f"zero bits, chain requires {required_bits}"
            )
        validate_block_structure(block, self.params)

        state = parent.state.copy()
        # raises on stateful invalidity
        state.connect_block(block, verify_pool=self.verify_pool)

        work = parent.cumulative_work + block_work(block.header.target_bits)
        self._records[block.hash] = _BlockRecord(
            block=block, cumulative_work=work, state=state
        )
        became_tip = work > self._records[self._active_tip].cumulative_work
        if became_tip:
            self._active_tip = block.hash
        if self._store is not None and not self._recovering:
            from repro.storage import MC_BLOCK

            self._store.append(MC_BLOCK, block.encode())
            if (
                became_tip
                and self.snapshot_interval
                and block.height % self.snapshot_interval == 0
            ):
                self._write_snapshot()
        return became_tip

    def state_at(self, block_hash: bytes) -> MainchainState:
        """The validated state after ``block_hash`` (any branch).

        Returns a defensive copy: callers may mutate the result freely
        without corrupting the branch's recorded state.  Blocks restored
        from a snapshot keep no historical state (pruning horizon) — only
        the recovered tip and blocks connected since have one.
        """
        try:
            record = self._records[block_hash]
        except KeyError:
            raise UnknownBlock(f"unknown block {block_hash.hex()[:16]}")
        if record.state is None:
            raise UnknownBlock(
                f"state for {block_hash.hex()[:16]} was pruned by disk recovery"
            )
        return record.state.copy()

    # -- durability ----------------------------------------------------------------

    def _write_snapshot(self) -> None:
        """Write a full snapshot (active chain + tip state), compacting the WAL."""
        if self._store is None or self._recovering:
            return
        from repro.storage import codec as storage_codec

        sections = {
            "mc/blocks": storage_codec.encode_blob_sequence(
                [b.encode() for b in self.active_chain()]
            ),
            "mc/state": storage_codec.encode_mainchain_state(self.state),
        }
        self._store.write_snapshot(self.height, sections)

    def _recover_from_store(self) -> None:
        """Restore ``snapshot + WAL tail`` from the attached store.

        Snapshot blocks are trusted (they were fully validated before being
        written by this node) and restored without re-validation; the WAL
        tail goes through the regular :meth:`add_block` path.  Raises
        :class:`~repro.errors.StorageError` when the stored chain does not
        match this chain's parameters (different genesis) or is internally
        inconsistent.
        """
        from repro import wire
        from repro.storage import MC_BLOCK, count_disk_recovery

        snapshot = self._store.latest_snapshot()
        records = self._store.records()
        self._recovering = True
        try:
            if snapshot is not None:
                self._restore_snapshot(snapshot[1])
            for kind, payload in records:
                if kind != MC_BLOCK:
                    raise StorageError(
                        f"unexpected sidechain record (kind {kind}) in a "
                        "mainchain store"
                    )
                try:
                    block = wire.decode_block(payload)
                except Exception as exc:
                    raise StorageError(f"corrupt WAL block: {exc}")
                if block.hash in self._records:
                    continue
                parent = self._records.get(block.header.prev_hash)
                if parent is None or parent.state is None:
                    # a fork tail hanging off a pruned (stateless) ancestor
                    # cannot be reconnected; the active chain never needs it
                    continue
                try:
                    self.add_block(block)
                except (ValidationError, OrphanBlock) as exc:
                    raise StorageError(f"WAL block failed re-validation: {exc}")
        finally:
            self._recovering = False
        # fold the replayed WAL into a fresh snapshot: recovery is idempotent
        self._write_snapshot()
        count_disk_recovery()

    def _restore_snapshot(self, sections: dict[str, bytes]) -> None:
        from repro import wire
        from repro.storage import codec as storage_codec

        try:
            raw_blocks = storage_codec.decode_blob_sequence(sections["mc/blocks"])
            state = storage_codec.decode_mainchain_state(
                sections["mc/state"], self.params
            )
        except KeyError as exc:
            raise StorageError(f"snapshot is missing section {exc}")
        try:
            blocks = [wire.decode_block(raw) for raw in raw_blocks]
        except Exception as exc:
            raise StorageError(f"corrupt snapshot block: {exc}")
        if not blocks:
            raise StorageError("snapshot holds no blocks")
        if blocks[0].hash != self.genesis.hash:
            raise StorageError(
                "stored chain has a different genesis (wrong network?)"
            )
        for prev, block in zip(blocks, blocks[1:]):
            if block.header.prev_hash != prev.hash:
                raise StorageError("stored chain is not hash-linked")
            if block.height != prev.height + 1:
                raise StorageError("stored chain heights are not contiguous")
        tip = blocks[-1]
        state.height = tip.height
        state.block_hashes = BlockHashChain([b.hash for b in blocks])
        self._records = {}
        work = 0
        for block in blocks:
            if block.height > 0:
                work += block_work(block.header.target_bits)
            self._records[block.hash] = _BlockRecord(
                block=block, cumulative_work=work, state=None
            )
        self._records[tip.hash] = _BlockRecord(
            block=tip, cumulative_work=work, state=state
        )
        self._active_tip = tip.hash


def _make_genesis(params: MainchainParams) -> Block:
    header = BlockHeader(
        prev_hash=hash_bytes(params.network_tag, b"zendoo/genesis"),
        height=0,
        merkle_root=NULL_DIGEST,
        sc_txs_commitment=NULL_DIGEST,
        timestamp=0,
        target_bits=params.pow_zero_bits,
        nonce=0,
    )
    return Block(header=header, transactions=())
