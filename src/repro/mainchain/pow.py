"""Simulated Nakamoto proof-of-work.

SUBSTITUTION (DESIGN.md §4): the paper assumes a production PoW mainchain.
We keep the real mechanism — hash-preimage puzzles with a leading-zero-bits
target and cumulative-work fork choice — at toy difficulty, so mining is
fast but reorg/fork behaviour (which is what the sidechain binding of §5.1
reacts to) is faithfully reproduced.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.mainchain.block import BlockHeader


def meets_target(block_hash: bytes, zero_bits: int) -> bool:
    """True when ``block_hash`` has at least ``zero_bits`` leading zero bits."""
    value = int.from_bytes(block_hash, "big")
    return value < (1 << (len(block_hash) * 8 - zero_bits))


def block_work(zero_bits: int) -> int:
    """Expected number of hash evaluations to find a block at this target."""
    return 1 << zero_bits


def mine_header(header: BlockHeader, max_attempts: int = 1 << 24) -> BlockHeader:
    """Grind the nonce until the header meets its own ``target_bits``."""
    candidate = header
    for nonce in range(max_attempts):
        candidate = header.with_nonce(nonce)
        if meets_target(candidate.hash, header.target_bits):
            return candidate
    raise ValidationError(
        f"no nonce below {max_attempts} meets {header.target_bits} zero bits"
    )
