"""A minimal transaction mempool with per-sidechain indexing.

Keeps submission order (the mainchain's first-seen tie-breaking for equal
quality certificates relies on it), rejects duplicate ids, and drops
transactions that made it into a connected block.

Beyond the FIFO queue, the pool maintains secondary indexes keyed by
ledger_id — one for all transactions touching a sidechain, one for its
pending withdrawal certificates — so block-template assembly and sidechain
nodes can query one sidechain's backlog without scanning the (potentially
thousands-of-sidechains-wide) global queue.  Every transaction records the
index buckets it occupies at submission time, which makes removal a
constant number of dict operations and :meth:`remove_confirmed` a single
pass over the confirmed transactions.
"""

from __future__ import annotations

from typing import Iterable

from repro import observability
from repro.errors import ValidationError
from repro.mainchain.transaction import (
    BtrTx,
    CertificateTx,
    CoinTransaction,
    CswTx,
    SidechainDeclarationTx,
    Transaction,
)

_REGISTRY = observability.registry()
_SUBMITTED = _REGISTRY.counter(
    "repro_mainchain_mempool_submitted_total",
    "transactions accepted into a mempool",
).labels()
_REJECTED = _REGISTRY.counter(
    "repro_mainchain_mempool_rejected_total",
    "mempool submissions rejected (duplicate txid)",
).labels()
_SIZE = _REGISTRY.gauge(
    "repro_mainchain_mempool_size",
    "pending transactions in the most recently mutated mempool",
).labels()


def _ledger_ids(tx: Transaction) -> tuple[bytes, ...]:
    """The sidechains a transaction touches (empty for pure coin moves)."""
    if isinstance(tx, CertificateTx):
        return (tx.wcert.ledger_id,)
    if isinstance(tx, SidechainDeclarationTx):
        return (tx.config.ledger_id,)
    if isinstance(tx, CswTx):
        return (tx.csw.ledger_id,)
    if isinstance(tx, BtrTx):
        return tuple({req.ledger_id: None for req in tx.requests})
    if isinstance(tx, CoinTransaction):
        return tuple({ft.ledger_id: None for ft in tx.forward_transfers})
    return ()


class Mempool:
    """FIFO pool of pending transactions keyed by txid."""

    def __init__(self) -> None:
        self._txs: dict[bytes, Transaction] = {}
        # ledger_id -> insertion-ordered set (dict keys) of pending txids
        self._by_ledger: dict[bytes, dict[bytes, None]] = {}
        # ledger_id -> insertion-ordered set of pending certificate txids
        self._certs_by_ledger: dict[bytes, dict[bytes, None]] = {}
        # txid -> the ledger buckets it occupies (written once at submit,
        # read once at removal — no per-removal rescan of the transaction)
        self._meta: dict[bytes, tuple[bytes, ...]] = {}

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._txs

    def submit(self, tx: Transaction) -> None:
        """Queue a transaction; duplicates are rejected."""
        txid = tx.txid
        if txid in self._txs:
            _REJECTED.inc()
            raise ValidationError("transaction already in the mempool")
        self._txs[txid] = tx
        ledgers = _ledger_ids(tx)
        if ledgers:
            self._meta[txid] = ledgers
            for ledger_id in ledgers:
                self._by_ledger.setdefault(ledger_id, {})[txid] = None
            if isinstance(tx, CertificateTx):
                self._certs_by_ledger.setdefault(tx.wcert.ledger_id, {})[
                    txid
                ] = None
        _SUBMITTED.inc()
        _SIZE.set(len(self._txs))

    def take(self, limit: int) -> list[Transaction]:
        """The first ``limit`` pending transactions (not removed)."""
        result = []
        for tx in self._txs.values():
            if len(result) >= limit:
                break
            result.append(tx)
        return result

    def pending_for(self, ledger_id: bytes) -> list[Transaction]:
        """Pending transactions touching one sidechain, submission order.

        Index lookup — cost is proportional to that sidechain's backlog,
        not the whole pool.
        """
        bucket = self._by_ledger.get(ledger_id)
        if not bucket:
            return []
        return [self._txs[txid] for txid in bucket]

    def certificates_for(self, ledger_id: bytes) -> list[Transaction]:
        """Pending certificate transactions for one sidechain, in order."""
        bucket = self._certs_by_ledger.get(ledger_id)
        if not bucket:
            return []
        return [self._txs[txid] for txid in bucket]

    def remove(self, txid: bytes) -> None:
        """Drop a transaction if present — O(1) including index upkeep."""
        if self._txs.pop(txid, None) is None:
            return
        for ledger_id in self._meta.pop(txid, ()):
            bucket = self._by_ledger.get(ledger_id)
            if bucket is not None:
                bucket.pop(txid, None)
                if not bucket:
                    del self._by_ledger[ledger_id]
            certs = self._certs_by_ledger.get(ledger_id)
            if certs is not None:
                certs.pop(txid, None)
                if not certs:
                    del self._certs_by_ledger[ledger_id]
        _SIZE.set(len(self._txs))

    def remove_confirmed(self, txs: Iterable[Transaction]) -> None:
        """Drop every transaction that appears in ``txs`` — one pass."""
        for tx in txs:
            self.remove(tx.txid)

    def clear(self) -> None:
        """Drop everything."""
        self._txs.clear()
        self._by_ledger.clear()
        self._certs_by_ledger.clear()
        self._meta.clear()
        _SIZE.set(0)
