"""A minimal transaction mempool.

Keeps submission order (the mainchain's first-seen tie-breaking for equal
quality certificates relies on it), rejects duplicate ids, and drops
transactions that made it into a connected block.
"""

from __future__ import annotations

from repro import observability
from repro.errors import ValidationError
from repro.mainchain.transaction import Transaction

_REGISTRY = observability.registry()
_SUBMITTED = _REGISTRY.counter(
    "repro_mainchain_mempool_submitted_total",
    "transactions accepted into a mempool",
).labels()
_REJECTED = _REGISTRY.counter(
    "repro_mainchain_mempool_rejected_total",
    "mempool submissions rejected (duplicate txid)",
).labels()
_SIZE = _REGISTRY.gauge(
    "repro_mainchain_mempool_size",
    "pending transactions in the most recently mutated mempool",
).labels()


class Mempool:
    """FIFO pool of pending transactions keyed by txid."""

    def __init__(self) -> None:
        self._txs: dict[bytes, Transaction] = {}

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._txs

    def submit(self, tx: Transaction) -> None:
        """Queue a transaction; duplicates are rejected."""
        if tx.txid in self._txs:
            _REJECTED.inc()
            raise ValidationError("transaction already in the mempool")
        self._txs[tx.txid] = tx
        _SUBMITTED.inc()
        _SIZE.set(len(self._txs))

    def take(self, limit: int) -> list[Transaction]:
        """The first ``limit`` pending transactions (not removed)."""
        result = []
        for tx in self._txs.values():
            if len(result) >= limit:
                break
            result.append(tx)
        return result

    def remove(self, txid: bytes) -> None:
        """Drop a transaction if present."""
        self._txs.pop(txid, None)
        _SIZE.set(len(self._txs))

    def remove_confirmed(self, txs) -> None:
        """Drop every transaction that appears in ``txs``."""
        for tx in txs:
            self.remove(tx.txid)

    def clear(self) -> None:
        """Drop everything."""
        self._txs.clear()
        _SIZE.set(0)
