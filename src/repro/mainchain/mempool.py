"""A minimal transaction mempool.

Keeps submission order (the mainchain's first-seen tie-breaking for equal
quality certificates relies on it), rejects duplicate ids, and drops
transactions that made it into a connected block.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.mainchain.transaction import Transaction


class Mempool:
    """FIFO pool of pending transactions keyed by txid."""

    def __init__(self) -> None:
        self._txs: dict[bytes, Transaction] = {}

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._txs

    def submit(self, tx: Transaction) -> None:
        """Queue a transaction; duplicates are rejected."""
        if tx.txid in self._txs:
            raise ValidationError("transaction already in the mempool")
        self._txs[tx.txid] = tx

    def take(self, limit: int) -> list[Transaction]:
        """The first ``limit`` pending transactions (not removed)."""
        result = []
        for tx in self._txs.values():
            if len(result) >= limit:
                break
            result.append(tx)
        return result

    def remove(self, txid: bytes) -> None:
        """Drop a transaction if present."""
        self._txs.pop(txid, None)

    def remove_confirmed(self, txs) -> None:
        """Drop every transaction that appears in ``txs``."""
        for tx in txs:
            self.remove(tx.txid)

    def clear(self) -> None:
        """Drop everything."""
        self._txs.clear()
