"""Command-line interface: run the example scenarios without touching code.

Usage::

    python -m repro.cli list
    python -m repro.cli quickstart
    python -m repro.cli lifecycle --epochs 4 --fund 500000
    python -m repro.cli inspect --epochs 2
    python -m repro.cli metrics --epochs 1 --format table
    python -m repro.cli market --scenario all --txs 8
"""

from __future__ import annotations

import argparse
import sys

from repro import observability
from repro.crypto.keys import KeyPair
from repro.scenarios import ZendooHarness


def _cmd_quickstart(args: argparse.Namespace) -> int:
    from examples import quickstart  # noqa: F401  (repo layout)

    quickstart.main()
    return 0


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    harness = ZendooHarness()
    harness.mine(2)
    sc = harness.create_sidechain(
        args.seed, epoch_len=args.epoch_len, submit_len=args.submit_len
    )
    user = KeyPair.from_seed(f"{args.seed}/user")
    harness.forward_transfer(sc, user, args.fund)
    harness.run_epochs(sc, args.epochs)
    print(f"ran {args.epochs} withdrawal epochs")
    print(f"  sidechain balance (MC view): {harness.mc.state.cctp.balance(sc.ledger_id)}")
    print(f"  user balance (SC view):      {harness.wallet(sc, user).balance()}")
    print(f"  certificates adopted:        {len(sc.node.certificates)}")
    for cert in sc.node.certificates:
        print(
            f"    epoch {cert.epoch_id}: quality={cert.quality}, "
            f"bts={len(cert.bt_list)}, proof={cert.proof.size_bytes}B"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    if args.data_dir is not None:
        return _inspect_data_dir(args)
    harness = ZendooHarness()
    harness.mine(2)
    sc = harness.create_sidechain(args.seed, epoch_len=4, submit_len=2)
    user = KeyPair.from_seed(f"{args.seed}/user")
    harness.forward_transfer(sc, user, 10_000)
    harness.run_epochs(sc, args.epochs)
    node = sc.node
    print(f"mainchain height: {harness.mc.height}")
    print(f"sidechain height: {node.height} ({len(node.blocks)} blocks)")
    print(f"MST: {node.state.mst.occupied_count} occupied slots, root {node.state.mst_root:#x}"[:90])
    print("sidechain blocks:")
    for block in node.blocks:
        refs = ",".join(str(r.mc_height) for r in block.mc_refs) or "-"
        print(
            f"  #{block.height:<3} slot={block.slot:<3} refs=[{refs}] "
            f"txs={len(block.transactions)}"
        )
    return 0


def _inspect_data_dir(args: argparse.Namespace) -> int:
    """Explore a node's store on disk, without constructing a node.

    ``--read-only`` (the default for safety is also read-only) opens the
    store without touching it — no tail repair, no lock, safe against a
    live node writing to the same directory.
    """
    from repro.errors import StorageError
    from repro.storage import FileStore, format_inspection, inspect_store

    try:
        store = FileStore(args.data_dir, read_only=True)
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        info = inspect_store(store)
    except StorageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        store.close()
    print(format_inspection(info))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a lifecycle-style scenario and dump the observability snapshot."""
    observability.reset()
    harness = ZendooHarness()
    harness.mine(2)
    sc = harness.create_sidechain(
        args.seed, epoch_len=args.epoch_len, submit_len=args.submit_len
    )
    user = KeyPair.from_seed(f"{args.seed}/user")
    harness.forward_transfer(sc, user, args.fund)
    harness.run_epochs(sc, args.epochs)
    registry = observability.registry()
    if args.format == "json":
        import json

        print(json.dumps(harness.telemetry(), indent=2))
    elif args.format == "prometheus":
        sys.stdout.write(observability.export.to_prometheus(registry))
    else:
        sys.stdout.write(observability.export.to_table(registry))
        spans = observability.tracer().roots
        if spans:
            print("\nspans:")
            _print_span_tree(spans, indent=1)
    return 0


def _print_span_tree(spans, indent: int) -> None:
    for span in spans:
        pad = "  " * indent
        print(
            f"{pad}{span.name}  wall={span.wall_seconds:.4f}s "
            f"cpu={span.cpu_seconds:.4f}s"
        )
        _print_span_tree(span.children, indent + 1)


def _cmd_market(args: argparse.Namespace) -> int:
    """Run proof-market red-team scenarios and print their gated outcomes."""
    from repro.scenarios.adversarial import SCENARIOS, run_all

    seed = args.seed.encode()
    if args.scenario == "all":
        reports = run_all(seed=seed, tx_count=args.txs)
    elif args.scenario in SCENARIOS:
        reports = [SCENARIOS[args.scenario]().run(seed=seed, tx_count=args.txs)]
    else:
        known = ", ".join(sorted(SCENARIOS))
        print(f"error: unknown scenario {args.scenario!r} (one of: {known})",
              file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps([rep.to_dict() for rep in reports], indent=2))
        return 0 if all(rep.passed for rep in reports) else 1
    for rep in reports:
        stmt = rep.statement
        print(
            f"{rep.name}: {'PASS' if rep.passed else 'FAIL'} "
            f"({rep.tx_count} txs, seed {rep.seed.decode(errors='replace')})"
        )
        print(
            f"  pool {stmt['pool_in']} = forger {stmt['forger_reward']} + "
            f"paid {stmt['total_paid']}; slashed {stmt['total_slashed']}, "
            f"pot out {stmt['slash_pot_out']}"
        )
        for name, ok in sorted(rep.checks.items()):
            print(f"  check {name}: {'ok' if ok else 'FAIL'}")
    return 0 if all(rep.passed for rep in reports) else 1


def _cmd_list(args: argparse.Namespace) -> int:
    print("available commands: list, quickstart, lifecycle, inspect, metrics, market")
    print("examples directory: quickstart.py, multi_sidechain_platform.py,")
    print("  payment_network.py, ceased_sidechain_recovery.py,")
    print("  certificate_latency_study.py, federated_sidechain.py,")
    print("  decentralized_forgers.py")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Zendoo reproduction scenarios"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available scenarios").set_defaults(
        func=_cmd_list
    )
    sub.add_parser("quickstart", help="run the quickstart walkthrough").set_defaults(
        func=_cmd_quickstart
    )

    lifecycle = sub.add_parser("lifecycle", help="run N withdrawal epochs")
    lifecycle.add_argument("--seed", default="cli-lifecycle")
    lifecycle.add_argument("--epochs", type=int, default=2)
    lifecycle.add_argument("--epoch-len", type=int, default=5, dest="epoch_len")
    lifecycle.add_argument("--submit-len", type=int, default=2, dest="submit_len")
    lifecycle.add_argument("--fund", type=int, default=100_000)
    lifecycle.set_defaults(func=_cmd_lifecycle)

    inspect = sub.add_parser(
        "inspect",
        help="dump sidechain block structure, or explore a store on disk",
    )
    inspect.add_argument("--seed", default="cli-inspect")
    inspect.add_argument("--epochs", type=int, default=1)
    inspect.add_argument(
        "--data-dir",
        default=None,
        dest="data_dir",
        help="inspect a node's on-disk store instead of running a scenario",
    )
    inspect.add_argument(
        "--read-only",
        action="store_true",
        help="open the store read-only (implied by --data-dir; never writes)",
    )
    inspect.set_defaults(func=_cmd_inspect)

    metrics = sub.add_parser(
        "metrics", help="run a scenario and print the observability snapshot"
    )
    metrics.add_argument("--seed", default="cli-metrics")
    metrics.add_argument("--epochs", type=int, default=1)
    metrics.add_argument("--epoch-len", type=int, default=5, dest="epoch_len")
    metrics.add_argument("--submit-len", type=int, default=2, dest="submit_len")
    metrics.add_argument("--fund", type=int, default=100_000)
    metrics.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="output format (default: human table + span tree)",
    )
    metrics.set_defaults(func=_cmd_metrics)

    market = sub.add_parser(
        "market",
        help="run the proof-market red-team scenarios (PR 10)",
    )
    market.add_argument(
        "--scenario",
        default="all",
        help="scenario name (see repro.scenarios.adversarial.SCENARIOS) or 'all'",
    )
    market.add_argument("--seed", default="cli-market")
    market.add_argument("--txs", type=int, default=6, help="transitions per epoch")
    market.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: per-check text)",
    )
    market.set_defaults(func=_cmd_market)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
