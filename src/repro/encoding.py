"""Canonical byte encoding used for hashing protocol objects.

Every hashable object in the library (transactions, block headers,
certificates) serializes through these helpers so ids are deterministic and
encodings are injective (all variable-length fields are length-prefixed).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


class Encoder:
    """Accumulates a canonical byte string."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def u8(self, value: int) -> "Encoder":
        self._parts.append(value.to_bytes(1, "little"))
        return self

    def u32(self, value: int) -> "Encoder":
        self._parts.append(value.to_bytes(4, "little"))
        return self

    def u64(self, value: int) -> "Encoder":
        self._parts.append(value.to_bytes(8, "little"))
        return self

    def i64(self, value: int) -> "Encoder":
        self._parts.append(value.to_bytes(8, "little", signed=True))
        return self

    def field_element(self, value: int) -> "Encoder":
        """A 32-byte little-endian field element."""
        self._parts.append(value.to_bytes(32, "little"))
        return self

    def raw(self, data: bytes) -> "Encoder":
        """Fixed-size bytes whose length is known from context."""
        self._parts.append(data)
        return self

    def var_bytes(self, data: bytes) -> "Encoder":
        """Length-prefixed variable-size bytes."""
        self._parts.append(len(data).to_bytes(4, "little"))
        self._parts.append(data)
        return self

    def text(self, value: str) -> "Encoder":
        return self.var_bytes(value.encode())

    def boolean(self, value: bool) -> "Encoder":
        return self.u8(1 if value else 0)

    def sequence(self, items: Sequence[T], encode_item: Callable[["Encoder", T], object]) -> "Encoder":
        """Length-prefixed sequence encoded by ``encode_item``."""
        self.u32(len(items))
        for item in items:
            encode_item(self, item)
        return self

    def optional(self, item: T | None, encode_item: Callable[["Encoder", T], object]) -> "Encoder":
        """A presence byte followed by the item when present."""
        if item is None:
            return self.u8(0)
        self.u8(1)
        encode_item(self, item)
        return self

    def done(self) -> bytes:
        """The accumulated canonical byte string."""
        return b"".join(self._parts)


class Decoder:
    """Consumes a canonical byte string produced by :class:`Encoder`.

    Every read validates bounds; :meth:`done` asserts full consumption so
    trailing garbage is always detected.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, size: int) -> bytes:
        from repro.errors import DecodeError

        if size < 0 or self._pos + size > len(self._data):
            raise DecodeError(
                f"truncated input: need {size} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}"
            )
        chunk = self._data[self._pos : self._pos + size]
        self._pos += size
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "little")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "little")

    def i64(self) -> int:
        return int.from_bytes(self._take(8), "little", signed=True)

    def field_element(self) -> int:
        return int.from_bytes(self._take(32), "little")

    def raw(self, size: int) -> bytes:
        return self._take(size)

    def var_bytes(self) -> bytes:
        return self._take(self.u32())

    def text(self) -> str:
        from repro.errors import DecodeError

        try:
            return self.var_bytes().decode()
        except UnicodeDecodeError as exc:
            raise DecodeError(f"invalid utf-8 text: {exc}")

    def boolean(self) -> bool:
        from repro.errors import DecodeError

        value = self.u8()
        if value not in (0, 1):
            raise DecodeError(f"invalid boolean byte {value}")
        return value == 1

    def sequence(self, decode_item: Callable[["Decoder"], T]) -> list[T]:
        count = self.u32()
        return [decode_item(self) for _ in range(count)]

    def optional(self, decode_item: Callable[["Decoder"], T]) -> T | None:
        if self.boolean():
            return decode_item(self)
        return None

    @property
    def remaining(self) -> int:
        """Unconsumed byte count."""
        return len(self._data) - self._pos

    def done(self) -> None:
        """Assert the input was fully consumed."""
        from repro.errors import DecodeError

        if self.remaining:
            raise DecodeError(f"{self.remaining} trailing bytes after decode")


def encode_parts(*parts: bytes) -> bytes:
    """Length-prefix and join byte strings (injective concatenation)."""
    enc = Encoder()
    for part in parts:
        enc.var_bytes(part)
    return enc.done()


def concat_all(parts: Iterable[bytes]) -> bytes:
    """Plain concatenation for fixed-size parts."""
    return b"".join(parts)
